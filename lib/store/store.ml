(** The durable store. Commit protocol: apply in memory first, then
    append the WAL record — an operation is committed iff its record is
    durable, so a statement that fails to apply logs nothing, and a crash
    mid-append loses only the uncommitted tail. Recovery inverts the
    protocol: checkpoint → ledger reattach → WAL tail replay → backfill
    resume, all deterministic over the same inputs. *)

open Openivm_engine
module Runner = Openivm.Runner
module Compiler = Openivm.Compiler
module Flags = Openivm.Flags
module Metadata = Openivm.Metadata
module Fault = Openivm_htap.Fault
module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics
module Ast = Openivm_sql.Ast

let m_backfill_resumed =
  Metrics.counter "openivm_backfill_resumed_total"
    ~help:"interrupted staged backfills resumed during recovery"

type recovery_info = {
  checkpoint_seq : int;
  replayed : int;
  torn_tail : bool;
  views_reattached : int;
  backfills_resumed : (string * int) list;
}

type t = {
  dir : string;
  flags : Flags.t;
  chunk_rows : int;
  faults : Fault.t option;
  db : Database.t;
  ext : Runner.extension;
  wal : Wal.writer;
  mutable closed : bool;
  mutable last_recovery : recovery_info;
}

let dir t = t.dir
let db t = t.db
let ext t = t.ext
let views t = t.ext.Runner.ext_views
let find_view t name = Runner.find_view t.ext name
let last_recovery t = t.last_recovery
let committed_seq t = Wal.next_seq t.wal - 1

let exec_stmts db stmts =
  List.iter (fun s -> ignore (Database.exec_stmt db s)) stmts

let ensure_open t = if t.closed then Error.fail "store: already closed"

(* --- the backfill ledger --- *)

let read_ledger db : Metadata.backfill_row list =
  List.map
    (fun (row : Row.t) ->
       match row with
       | [| Value.Str bf_view; Value.Str bf_sql; Value.Str bf_strategy;
            Value.Str bf_dialect; Value.Str bf_refresh;
            Value.Int bf_chunk_rows; Value.Int bf_total_chunks;
            Value.Int bf_chunks_done; Value.Str bf_state;
            Value.Int bf_install_seq |] ->
         { Metadata.bf_view; bf_sql; bf_strategy; bf_dialect; bf_refresh;
           bf_chunk_rows; bf_total_chunks; bf_chunks_done; bf_state;
           bf_install_seq }
       | _ -> Error.fail "store: malformed backfill ledger row")
    (Database.query db Metadata.backfill_query).Database.rows

let ledger_row db view : Metadata.backfill_row option =
  List.find_opt (fun r -> r.Metadata.bf_view = view) (read_ledger db)

let mark_chunk_done db (row : Metadata.backfill_row) (index : int) : unit =
  let done_ = index + 1 in
  exec_stmts db
    (Metadata.backfill_set
       { row with
         Metadata.bf_chunks_done = done_;
         bf_state =
           (if done_ >= row.Metadata.bf_total_chunks then "done"
            else "running") })

(* Per-view flag overrides recorded in the ledger / Install records, so
   reattach and replay reproduce the original compilation even if the
   store was reopened with different defaults. *)
let flags_override (base : Flags.t) ~strategy ~dialect ~refresh : Flags.t =
  let f = base in
  let f =
    match Flags.strategy_of_string strategy with
    | Some s -> { f with Flags.strategy = s }
    | None -> f
  in
  let f =
    match Flags.refresh_of_string refresh with
    | Some r -> { f with Flags.refresh = r }
    | None -> f
  in
  let module D = Openivm_sql.Dialect in
  if dialect = D.postgres.D.name then { f with Flags.dialect = D.postgres }
  else if dialect = D.duckdb.D.name then { f with Flags.dialect = D.duckdb }
  else f

(* --- staged install (shared by live exec and WAL replay) --- *)

(** Deferred install + "running" ledger row; no chunks yet. *)
let stage_install ~db ~(ext : Runner.extension) ~flags ~chunk_rows
    ~install_seq (view_sql : string) :
  Runner.view * Metadata.backfill_row =
  let v =
    Runner.install ~flags ~registry:ext.Runner.ext_views ~load:`Deferred db
      view_sql
  in
  ext.Runner.ext_views <- v :: ext.Runner.ext_views;
  let row =
    { Metadata.bf_view = Runner.view_name v;
      bf_sql = view_sql;
      bf_strategy = Flags.strategy_to_string flags.Flags.strategy;
      bf_dialect = flags.Flags.dialect.Openivm_sql.Dialect.name;
      bf_refresh = Flags.refresh_to_string flags.Flags.refresh;
      bf_chunk_rows = chunk_rows;
      bf_total_chunks = Runner.backfill_total_chunks v ~chunk_rows;
      bf_chunks_done = 0;
      bf_state = "running";
      bf_install_seq = install_seq }
  in
  exec_stmts db (Metadata.backfill_set row);
  (v, row)

let roll_fault t kind =
  match t.faults with
  | Some f when Fault.roll f kind -> raise Fault.Injected_crash
  | _ -> ()

(** Run chunks [from .. total-1] of a staged install: apply, update the
    ledger, log. The [Chunk_crash] fault fires {e before} a chunk — the
    canonical killed-at-chunk-K injection point. *)
let run_chunks t (v : Runner.view) ~(row : Metadata.backfill_row)
    ~(from : int) : unit =
  for k = from to row.Metadata.bf_total_chunks - 1 do
    roll_fault t Fault.Chunk_crash;
    ignore
      (Runner.backfill_chunk v ~chunk_rows:row.Metadata.bf_chunk_rows
         ~index:k);
    mark_chunk_done t.db row k;
    ignore (Wal.append t.wal (Wal.Chunk { view = row.Metadata.bf_view;
                                          index = k }))
  done

let install_view t (sql : string) : Runner.view =
  (* apply-first-then-log needs the seq before the append: peek it *)
  let install_seq = Wal.next_seq t.wal in
  let v, row =
    stage_install ~db:t.db ~ext:t.ext ~flags:t.flags
      ~chunk_rows:t.chunk_rows ~install_seq sql
  in
  let logged =
    Wal.append t.wal
      (Wal.Install
         { view_sql = sql; chunk_rows = t.chunk_rows;
           strategy = row.Metadata.bf_strategy;
           dialect = row.Metadata.bf_dialect;
           refresh = row.Metadata.bf_refresh })
  in
  assert (logged = install_seq);
  run_chunks t v ~row ~from:0;
  v

(* --- bridge batches --- *)

(** Mirror of {!Openivm_htap.Pipeline}'s replica apply: one shipped delta
    row onto the OLAP-side base replica. *)
let apply_to_replica db ~(base : string) (delta_row : Row.t) : unit =
  let tbl = Catalog.find_table (Database.catalog db) base in
  let arity = Array.length delta_row - 1 in
  let image = Array.sub delta_row 0 arity in
  match delta_row.(arity) with
  | Value.Bool true -> Table.insert tbl image
  | Value.Bool false ->
    let found = ref None in
    Table.iter_slots
      (fun slot row ->
         if !found = None && Row.equal row image then found := Some slot)
      tbl;
    (match !found with
     | Some slot -> ignore (Table.delete_slot tbl slot)
     | None -> ())
  | _ -> Error.fail "store: delta row without boolean multiplicity"

let replay_batch db ext ~view ~source ~seq ~replica (rows : Row.t list) :
  unit =
  match Runner.find_view ext view with
  | None -> ()  (* the view was dropped later in the log *)
  | Some v ->
    let delta =
      Catalog.find_table (Database.catalog db)
        (Compiler.delta_table v.Runner.compiled source)
    in
    Trigger.without_hooks (Database.triggers db) (fun () ->
        List.iter
          (fun row ->
             Table.insert delta row;
             if replica then apply_to_replica db ~base:source row)
          rows);
    exec_stmts db (Openivm.Metadata.set_watermark ~source ~seq);
    v.Runner.pending_deltas <- v.Runner.pending_deltas + List.length rows

let log_batch t ~view ~source ~seq ~replica (rows : Row.t list) : unit =
  ensure_open t;
  ignore (Wal.append t.wal (Wal.Batch { view; source; seq; replica; rows }))

(* --- statement execution --- *)

(** Apply a logged statement through the extension (shared by live exec
    and replay): DROP of a maintained view also clears its ledger row. *)
let apply_stmt db ext (sql : string) :
  [ `Result of Database.exec_result | `Installed of Runner.view ] =
  let r = Runner.exec_ext ext sql in
  (match Openivm_sql.Parser.parse_statement sql with
   | Ast.Drop { kind = `Table; name; _ } ->
     exec_stmts db (Metadata.backfill_delete ~view_name:name)
   | _ -> ());
  r

let exec t (sql : string) :
  [ `Result of Database.exec_result | `Installed of Runner.view ] =
  ensure_open t;
  match Openivm_sql.Parser.parse_statement sql with
  | Ast.Create_view { materialized = true; _ } ->
    `Installed (install_view t sql)
  | Ast.Select_stmt _ ->
    (* reads commit nothing: refresh + query, unlogged *)
    Runner.exec_ext t.ext sql
  | _ ->
    let r = apply_stmt t.db t.ext sql in
    ignore (Wal.append t.wal (Wal.Stmt sql));
    r

(* --- checkpoint --- *)

let checkpoint t : string =
  ensure_open t;
  if List.exists (fun r -> r.Metadata.bf_state = "running") (read_ledger t.db)
  then Error.fail "store: cannot checkpoint while a backfill is incomplete";
  let last_seq = committed_seq t in
  let path = Checkpoint.save t.db ~dir:t.dir ~last_seq in
  (* Truncate_crash fires inside: death between checkpoint and truncation
     leaves a full WAL whose records all sit at or below the checkpoint's
     sequence number — recovery skips every one of them *)
  Wal.truncate t.wal;
  Checkpoint.prune ~dir:t.dir ~keep:2;
  path

let verify t : bool =
  (* fold all pending deltas first: recomputing a view-over-view reads
     its upstream's backing table, which is stale until that upstream
     refreshes (refresh pulls upstreams, so any order works) *)
  List.iter Runner.refresh t.ext.Runner.ext_views;
  List.for_all
    (fun v -> Runner.visible_rows v = Runner.recompute_rows v)
    t.ext.Runner.ext_views

let close t : unit =
  if not t.closed then begin
    t.closed <- true;
    Wal.close t.wal
  end

(* --- recovery --- *)

let wal_file = "wal.log"

let open_ ?(flags = Flags.default) ?faults ?(chunk_rows = 256)
    ~(dir : string) () : t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let wal_path = Filename.concat dir wal_file in
  Span.with_span "recovery" (fun sp ->
      (* 1. the log's valid prefix (repairing any torn tail) *)
      let wal_read = Wal.repair ~path:wal_path in
      (* 2. newest valid checkpoint, else an empty database *)
      let db, checkpoint_seq =
        match
          Span.with_span "recovery.checkpoint" (fun _ ->
              Checkpoint.load_latest ~dir)
        with
        | Some (db, seq) -> (db, seq)
        | None -> (Database.create ~name:"store" (), 0)
      in
      exec_stmts db Metadata.backfill_ddl;
      exec_stmts db Metadata.ddl;  (* IF NOT EXISTS, idempotent *)
      let ext = Runner.load ~flags db in
      (* 3. reattach checkpointed views from the ledger, in install order *)
      let ledger = read_ledger db in
      List.iter
        (fun (r : Metadata.backfill_row) ->
           let vflags =
             flags_override flags ~strategy:r.Metadata.bf_strategy
               ~dialect:r.Metadata.bf_dialect ~refresh:r.Metadata.bf_refresh
           in
           let v =
             Runner.install ~flags:vflags ~registry:ext.Runner.ext_views
               ~load:`Attach db r.Metadata.bf_sql
           in
           ext.Runner.ext_views <- v :: ext.Runner.ext_views)
        ledger;
      (* the checkpoint may carry unpropagated delta rows: pending_deltas
         must mirror them or lazy refresh would skip the fold *)
      List.iter
        (fun (v : Runner.view) ->
           v.Runner.pending_deltas <-
             List.fold_left
               (fun acc base ->
                  acc
                  + Table.row_count
                      (Catalog.find_table (Database.catalog db)
                         (Compiler.delta_table v.Runner.compiled base)))
               0
               (Compiler.base_tables v.Runner.compiled))
        ext.Runner.ext_views;
      (* 4. replay the WAL tail; records folded into the checkpoint are
         skipped, which is what makes a crash between checkpoint and
         truncation harmless *)
      let tail =
        List.filter (fun r -> r.Wal.seq > checkpoint_seq) wal_read.Wal.records
      in
      Span.with_span "recovery.replay"
        ~attrs:[ ("records", Span.Int (List.length tail)) ]
        (fun _ ->
           List.iter
             (fun { Wal.seq; payload } ->
                match payload with
                | Wal.Stmt sql -> ignore (apply_stmt db ext sql)
                | Wal.Install
                    { view_sql; chunk_rows = cr; strategy; dialect; refresh }
                  ->
                  let vflags =
                    flags_override flags ~strategy ~dialect ~refresh
                  in
                  ignore
                    (stage_install ~db ~ext ~flags:vflags ~chunk_rows:cr
                       ~install_seq:seq view_sql)
                | Wal.Chunk { view; index } ->
                  (match (Runner.find_view ext view, ledger_row db view) with
                   | Some v, Some row ->
                     ignore
                       (Runner.backfill_chunk v
                          ~chunk_rows:row.Metadata.bf_chunk_rows ~index);
                     mark_chunk_done db row index
                   | _ -> ())
                | Wal.Batch { view; source; seq = bseq; replica; rows } ->
                  replay_batch db ext ~view ~source ~seq:bseq ~replica rows)
             tail);
      (* 5. the writer continues the sequence past everything ever logged
         (monotonic across truncations) *)
      let max_seq =
        List.fold_left
          (fun acc r -> max acc r.Wal.seq)
          checkpoint_seq wal_read.Wal.records
      in
      let wal = Wal.openw ?faults ~path:wal_path ~next_seq:(max_seq + 1) () in
      let info =
        { checkpoint_seq; replayed = List.length tail;
          torn_tail = wal_read.Wal.torn;
          views_reattached = List.length ledger; backfills_resumed = [] }
      in
      let t =
        { dir; flags; chunk_rows; faults; db; ext; wal; closed = false;
          last_recovery = info }
      in
      (* 6. resume interrupted backfills from the last completed chunk *)
      let resumed =
        List.filter_map
          (fun (r : Metadata.backfill_row) ->
             if r.Metadata.bf_state <> "running" then None
             else
               match Runner.find_view ext r.Metadata.bf_view with
               | None -> None
               | Some v ->
                 let from = r.Metadata.bf_chunks_done in
                 Span.with_span "backfill.resume"
                   ~attrs:
                     [ ("view", Span.Str r.Metadata.bf_view);
                       ("from_chunk", Span.Int from) ]
                   (fun _ -> run_chunks t v ~row:r ~from);
                 Metrics.incr m_backfill_resumed;
                 Some (r.Metadata.bf_view, from))
          (read_ledger db)
      in
      t.last_recovery <- { info with backfills_resumed = resumed };
      if sp != Span.none then begin
        Span.set_int sp "checkpoint_seq" checkpoint_seq;
        Span.set_int sp "replayed" t.last_recovery.replayed;
        Span.set_int sp "views_reattached" t.last_recovery.views_reattached;
        Span.set_int sp "backfills_resumed" (List.length resumed)
      end;
      t)
