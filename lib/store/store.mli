(** The durable store: a database + OpenIVM extension whose committed
    state survives process death.

    Durability = WAL + checkpoints. Every committed statement (and every
    HTAP bridge batch) appends a {!Wal} record {e after} applying, so a
    record's presence certifies the operation; {!checkpoint} folds the
    log into an atomic {!Checkpoint} snapshot and truncates it. Opening a
    directory runs recovery: load the newest valid checkpoint, reattach
    its materialized views from the [_openivm_backfill_progress] ledger,
    replay the WAL tail (records at or below the checkpoint's sequence
    number are skipped — a crash between checkpoint and truncation is
    harmless), repair any torn tail, fast-forward the bridge watermarks,
    and resume interrupted backfills from their last completed chunk.

    Initial materialization is a resumable staged backfill: a
    [CREATE MATERIALIZED VIEW] logs an [Install] record, then fills the
    view in {!Openivm.Runner.backfill_chunk} chunks, each logged and
    recorded in the progress ledger — a killed install resumes at the
    last completed chunk, not at chunk 0. *)

open Openivm_engine

type t

(** What {!open_} did to bring the directory back. *)
type recovery_info = {
  checkpoint_seq : int;     (** 0 = started from an empty database *)
  replayed : int;           (** WAL tail records replayed *)
  torn_tail : bool;         (** an unreadable tail was discarded *)
  views_reattached : int;   (** views restored from the checkpoint ledger *)
  backfills_resumed : (string * int) list;
      (** interrupted installs finished during recovery:
          (view, chunk index resumed from) *)
}

val open_ :
  ?flags:Openivm.Flags.t ->
  ?faults:Openivm_htap.Fault.t ->
  ?chunk_rows:int ->
  dir:string -> unit -> t
(** Open (creating if needed) a durable store at [dir] and run recovery.
    [chunk_rows] (default 256) sizes backfill chunks for new installs;
    [faults] arms the storage fault harness — injected crashes raise
    {!Openivm_htap.Fault.Injected_crash}, after which the store object
    is dead and the directory must be reopened. *)

val dir : t -> string
val db : t -> Database.t
val ext : t -> Openivm.Runner.extension
val views : t -> Openivm.Runner.view list
val find_view : t -> string -> Openivm.Runner.view option
val last_recovery : t -> recovery_info
val committed_seq : t -> int
(** Sequence number of the last durably committed record. *)

val exec :
  t -> string ->
  [ `Result of Database.exec_result | `Installed of Openivm.Runner.view ]
(** Execute one statement durably: apply, then log. SELECTs refresh lazy
    views and are not logged; [CREATE MATERIALIZED VIEW] runs the staged
    backfill; [DROP TABLE] of a maintained view uninstalls it and clears
    its ledger row. *)

val log_batch :
  t -> view:string -> source:string -> seq:int -> replica:bool ->
  Row.t list -> unit
(** Journal an HTAP bridge batch that was just applied to this store's
    database (wire as {!Openivm_htap.Pipeline}'s [on_apply], before the
    outbox acknowledgement): recovery replays it — delta rows, replica
    rows, watermark — so the exactly-once protocol survives restart. *)

val checkpoint : t -> string
(** Fold the log into a new checkpoint and truncate it; returns the
    checkpoint directory. Raises {!Error.Sql_error} while a backfill is
    incomplete (interrupted and not yet resumed). *)

val verify : t -> bool
(** Every maintained view agrees with recomputing its defining query. *)

val close : t -> unit
(** Flush and close the WAL. Using the store afterwards raises. *)
