(** The write-ahead log. See the interface for the record layout; the
    invariants that matter here:

    - every append is flushed before returning — a record either made it
      to the file whole or the reader rejects it;
    - the checksum covers the body (seq + tag + payload), the length
      prefix bounds the read, and decoding is total (any malformed input
      is a torn tail, never an exception);
    - injected storage faults leave the file exactly as a dying process
      would: partial header, partial body, or a flipped byte, then
      {!Openivm_htap.Fault.Injected_crash}. *)

open Openivm_engine
module Fault = Openivm_htap.Fault
module Metrics = Openivm_obs.Metrics

let m_records =
  Metrics.counter "openivm_wal_records_total"
    ~help:"records appended to the write-ahead log"

let m_bytes =
  Metrics.counter "openivm_wal_bytes_total"
    ~help:"bytes appended to the write-ahead log"

let m_truncations =
  Metrics.counter "openivm_wal_truncations_total"
    ~help:"post-checkpoint WAL truncations"

let m_torn =
  Metrics.counter "openivm_wal_torn_tail_total"
    ~help:"torn or corrupt WAL tails discarded during recovery"

type payload =
  | Stmt of string
  | Install of {
      view_sql : string;
      chunk_rows : int;
      strategy : string;
      dialect : string;
      refresh : string;
    }
  | Chunk of { view : string; index : int }
  | Batch of {
      view : string;
      source : string;
      seq : int;
      replica : bool;
      rows : Row.t list;
    }

type record = { seq : int; payload : payload }

let payload_to_string = function
  | Stmt sql -> Printf.sprintf "stmt %S" sql
  | Install { view_sql; chunk_rows; _ } ->
    Printf.sprintf "install chunk_rows=%d %S" chunk_rows view_sql
  | Chunk { view; index } -> Printf.sprintf "chunk view=%s index=%d" view index
  | Batch { view; source; seq; replica; rows } ->
    Printf.sprintf "batch view=%s source=%s seq=%d replica=%b rows=%d" view
      source seq replica (List.length rows)

(* --- checksum --- *)

let adler32 (s : string) : int =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
       a := (!a + Char.code c) mod 65521;
       b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

(* --- codec --- *)

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)
let add_u64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_value buf = function
  | Value.Null -> Buffer.add_char buf 'N'
  | Value.Bool b ->
    Buffer.add_char buf 'B';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int i ->
    Buffer.add_char buf 'I';
    add_u64 buf i
  | Value.Float f ->
    (* round-trippable decimal beats raw bits here: records stay
       inspectable and share the CSV checkpoint's exact-float contract *)
    Buffer.add_char buf 'F';
    add_str buf (Value.to_string_exact (Value.Float f))
  | Value.Str s ->
    Buffer.add_char buf 'S';
    add_str buf s
  | Value.Date d ->
    Buffer.add_char buf 'D';
    add_u64 buf d

let add_row buf (row : Row.t) =
  add_u32 buf (Array.length row);
  Array.iter (add_value buf) row

let tag_of = function
  | Stmt _ -> '\001'
  | Install _ -> '\002'
  | Chunk _ -> '\003'
  | Batch _ -> '\004'

let encode_body ~seq (p : payload) : string =
  let buf = Buffer.create 64 in
  add_u64 buf seq;
  Buffer.add_char buf (tag_of p);
  (match p with
   | Stmt sql -> add_str buf sql
   | Install { view_sql; chunk_rows; strategy; dialect; refresh } ->
     add_str buf view_sql;
     add_u32 buf chunk_rows;
     add_str buf strategy;
     add_str buf dialect;
     add_str buf refresh
   | Chunk { view; index } ->
     add_str buf view;
     add_u32 buf index
   | Batch { view; source; seq; replica; rows } ->
     add_str buf view;
     add_str buf source;
     add_u64 buf seq;
     Buffer.add_char buf (if replica then '\001' else '\000');
     add_u32 buf (List.length rows);
     List.iter (add_row buf) rows);
  Buffer.contents buf

(* Decoding is total: [Torn] marks any malformed input. *)
exception Torn

let get_u32 s pos =
  if !pos + 4 > String.length s then raise Torn;
  let n = Int32.to_int (String.get_int32_le s !pos) in
  pos := !pos + 4;
  n land 0xFFFFFFFF

let get_u64 s pos =
  if !pos + 8 > String.length s then raise Torn;
  let n = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  n

let get_char s pos =
  if !pos >= String.length s then raise Torn;
  let c = s.[!pos] in
  incr pos;
  c

let get_str s pos =
  let len = get_u32 s pos in
  if len < 0 || !pos + len > String.length s then raise Torn;
  let r = String.sub s !pos len in
  pos := !pos + len;
  r

let get_value s pos =
  match get_char s pos with
  | 'N' -> Value.Null
  | 'B' -> Value.Bool (get_char s pos = '\001')
  | 'I' -> Value.Int (get_u64 s pos)
  | 'F' ->
    let lit = get_str s pos in
    (match float_of_string_opt lit with
     | Some f -> Value.Float f
     | None -> raise Torn)
  | 'S' -> Value.Str (get_str s pos)
  | 'D' -> Value.Date (get_u64 s pos)
  | _ -> raise Torn

let get_row s pos : Row.t =
  let n = get_u32 s pos in
  if n > String.length s then raise Torn;
  Array.init n (fun _ -> get_value s pos)

let decode_body (body : string) : record =
  let pos = ref 0 in
  let seq = get_u64 body pos in
  let payload =
    match get_char body pos with
    | '\001' -> Stmt (get_str body pos)
    | '\002' ->
      let view_sql = get_str body pos in
      let chunk_rows = get_u32 body pos in
      let strategy = get_str body pos in
      let dialect = get_str body pos in
      let refresh = get_str body pos in
      Install { view_sql; chunk_rows; strategy; dialect; refresh }
    | '\003' ->
      let view = get_str body pos in
      let index = get_u32 body pos in
      Chunk { view; index }
    | '\004' ->
      let view = get_str body pos in
      let source = get_str body pos in
      let bseq = get_u64 body pos in
      let replica = get_char body pos = '\001' in
      let n = get_u32 body pos in
      if n > String.length body then raise Torn;
      let rows = List.init n (fun _ -> get_row body pos) in
      Batch { view; source; seq = bseq; replica; rows }
    | _ -> raise Torn
  in
  if !pos <> String.length body then raise Torn;
  { seq; payload }

(* --- appending --- *)

type writer = {
  path : string;
  mutable oc : out_channel;
  faults : Fault.t option;
  mutable seq : int;  (** next sequence number to assign *)
}

let open_append path =
  open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path

let openw ?faults ~path ~next_seq () : writer =
  { path; oc = open_append path; faults; seq = next_seq }

let next_seq w = w.seq

let roll w kind =
  match w.faults with None -> false | Some f -> Fault.roll f kind

let draw w bound =
  match w.faults with None -> 0 | Some f -> Fault.draw f bound

(** Simulate the process dying mid-write: emit [prefix] bytes of the full
    record image, flush, raise. The writer is left unusable on purpose —
    recovery reopens the file. *)
let die_torn w (image : string) (prefix : int) : 'a =
  output_substring w.oc image 0 prefix;
  flush w.oc;
  raise Fault.Injected_crash

let append (w : writer) (p : payload) : int =
  let seq = w.seq in
  let body = encode_body ~seq p in
  let header = Buffer.create 8 in
  add_u32 header (String.length body);
  add_u32 header (adler32 body);
  let image = Buffer.contents header ^ body in
  if roll w Fault.Truncated_record then
    (* die mid-header: 1..7 bytes of the length/checksum prefix *)
    die_torn w image (1 + draw w 7)
  else if roll w Fault.Torn_tail then
    (* die mid-body: full header, partial payload *)
    die_torn w image (8 + draw w (max 1 (String.length body)))
  else if roll w Fault.Corrupt_record then begin
    (* a byte flips on the way to disk, then the process dies; the
       checksum catches it on recovery *)
    let b = Bytes.of_string image in
    let i = 8 + draw w (max 1 (String.length body)) in
    let i = min i (Bytes.length b - 1) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
    output_bytes w.oc b;
    flush w.oc;
    raise Fault.Injected_crash
  end
  else begin
    output_string w.oc image;
    flush w.oc;
    w.seq <- seq + 1;
    Metrics.incr m_records;
    Metrics.add m_bytes (String.length image);
    seq
  end

let truncate (w : writer) : unit =
  if roll w Fault.Truncate_crash then raise Fault.Injected_crash;
  close_out w.oc;
  close_out (open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 w.path);
  w.oc <- open_append w.path;
  Metrics.incr m_truncations

let close (w : writer) : unit = close_out w.oc

(* --- reading --- *)

type read_result = {
  records : record list;
  valid_bytes : int;
  torn : bool;
}

let read_file path : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let max_record_bytes = 1 lsl 30

let read ~path : read_result =
  if not (Sys.file_exists path) then
    { records = []; valid_bytes = 0; torn = false }
  else begin
    let data = read_file path in
    let len = String.length data in
    let records = ref [] in
    let off = ref 0 in
    (try
       while !off + 8 <= len do
         let pos = ref !off in
         let body_len = get_u32 data pos in
         let checksum = get_u32 data pos in
         if body_len > max_record_bytes || !pos + body_len > len then
           raise Torn;
         let body = String.sub data !pos body_len in
         if adler32 body <> checksum then raise Torn;
         let r = decode_body body in
         records := r :: !records;
         off := !pos + body_len
       done
     with Torn -> ());
    let torn = !off < len in
    if torn then Metrics.incr m_torn;
    { records = List.rev !records; valid_bytes = !off; torn }
  end

let repair ~path : read_result =
  let r = read ~path in
  if r.torn then Unix.truncate path r.valid_bytes;
  r
