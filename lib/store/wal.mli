(** The write-ahead log: an append-only file of length-prefixed,
    checksummed, sequence-numbered records. One record per committed
    operation; a statement is committed iff its record is durable.

    On-disk record layout (all integers little-endian):
    {v
      [u32 body length][u32 Adler-32 of body][body]
      body = [u64 seq][u8 tag][payload]
    v}

    Reading stops at the first invalid record (short header, implausible
    length, checksum mismatch, undecodable payload): everything after a
    torn tail is by definition uncommitted. {!repair} truncates the file
    back to the valid prefix so the next append starts clean. *)

open Openivm_engine

type payload =
  | Stmt of string
      (** a committed SQL statement (DML/DDL), replayed verbatim *)
  | Install of {
      view_sql : string;   (** the CREATE MATERIALIZED VIEW statement *)
      chunk_rows : int;
      strategy : string;
      dialect : string;
      refresh : string;
    }
      (** staged install started: DDL + metadata are logically committed,
          the view fills via subsequent {!Chunk} records *)
  | Chunk of { view : string; index : int }
      (** backfill chunk [index] of [view] completed *)
  | Batch of {
      view : string;
      source : string;
      seq : int;           (** bridge batch sequence (per source) *)
      replica : bool;      (** rows were also applied to the base replica *)
      rows : Row.t list;   (** delta rows incl. multiplicity column *)
    }
      (** an HTAP bridge batch durably applied (watermark advanced) *)

type record = { seq : int; payload : payload }

val payload_to_string : payload -> string
(** One-line description for logs and the [recover] CLI. *)

(** {1 Appending} *)

type writer

val openw :
  ?faults:Openivm_htap.Fault.t -> path:string -> next_seq:int -> unit ->
  writer
(** Open (creating if missing) for append. [next_seq] seeds the sequence
    counter — callers derive it from recovery so sequence numbers stay
    monotonic across truncations. *)

val append : writer -> payload -> int
(** Write one record, flush, return its sequence number. Storage faults
    (when a harness was passed) fire here: [Torn_tail] writes a partial
    body, [Truncated_record] a partial header, [Corrupt_record] flips a
    body byte — each then raises
    {!Openivm_htap.Fault.Injected_crash} with the file exactly as a
    dying process would leave it. *)

val next_seq : writer -> int
val truncate : writer -> unit
(** Empty the file (after a checkpoint); the sequence counter keeps
    counting. May raise [Injected_crash] via the [Truncate_crash] fault
    {e before} truncating — modelling death between checkpoint and
    truncation. *)

val close : writer -> unit

(** {1 Reading} *)

type read_result = {
  records : record list;  (** the valid prefix, in append order *)
  valid_bytes : int;      (** file offset where the valid prefix ends *)
  torn : bool;            (** bytes (an unreadable tail) followed it *)
}

val read : path:string -> read_result
(** Decode the valid prefix of the log (empty result if the file does not
    exist). Never raises on malformed input — garbage is a torn tail. *)

val repair : path:string -> read_result
(** {!read}, then truncate the file back to [valid_bytes] so subsequent
    appends extend a clean log. *)

val adler32 : string -> int
(** The record checksum (exposed for checkpoint manifests). *)
