(** Synthetic data generators for the benchmarks and examples: the paper's
    groups table, a sales/customers star pair, uniform and Zipfian key
    distributions — all seeded for reproducibility. *)

open Openivm_engine

type t = { rng : Random.State.t }

let create ?(seed = 1234) () = { rng = Random.State.make [| seed |] }

let uniform t n = Random.State.int t.rng n

(** Zipf(s) sampler over [0, n) via rejection-free inverse CDF on a
    precomputed table (fine for the n <= 1e6 used here). *)
type zipf = { cdf : float array }

let zipf ?(s = 1.1) n : zipf =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
       acc := !acc +. (w /. total);
       cdf.(i) <- !acc)
    weights;
  { cdf }

let zipf_sample t (z : zipf) : int =
  let u = Random.State.float t.rng 1.0 in
  (* binary search for the first cdf >= u *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* --- the paper's groups table --- *)

let groups_ddl = "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)"

let group_key i = Printf.sprintf "g%05d" i

(** Populate groups with [rows] rows over [domain] distinct keys. *)
let populate_groups ?(domain = 1000) (db : Database.t) (t : t) ~rows : unit =
  let catalog = Database.catalog db in
  let tbl = Catalog.find_table catalog "groups" in
  Trigger.without_hooks (Database.triggers db) (fun () ->
      for _ = 1 to rows do
        Table.insert tbl
          [| Value.Str (group_key (uniform t domain));
             Value.Int (uniform t 1000) |]
      done)

(** Raw delta rows for the groups table: [(key, value, multiplicity)]. *)
let groups_delta_rows ?(domain = 1000) ?(delete_fraction = 0.2) (t : t) ~rows :
  (string * int * bool) list =
  List.init rows (fun _ ->
      ( group_key (uniform t domain),
        uniform t 1000,
        Random.State.float t.rng 1.0 >= delete_fraction ))

(* --- sales / customers star pair (for join views) --- *)

let sales_ddl =
  "CREATE TABLE sales(sale_id INTEGER, cust INTEGER, item VARCHAR, amount \
   INTEGER)"

let customers_ddl = "CREATE TABLE customers(cust INTEGER, region VARCHAR)"

let regions = [| "emea"; "amer"; "apac"; "latam" |]

let populate_customers (db : Database.t) (t : t) ~customers : unit =
  let tbl = Catalog.find_table (Database.catalog db) "customers" in
  Trigger.without_hooks (Database.triggers db) (fun () ->
      for i = 0 to customers - 1 do
        Table.insert tbl
          [| Value.Int i;
             Value.Str regions.(uniform t (Array.length regions)) |]
      done)

let populate_sales ?(customers = 1000) (db : Database.t) (t : t) ~rows : unit =
  let tbl = Catalog.find_table (Database.catalog db) "sales" in
  let z = zipf customers in
  Trigger.without_hooks (Database.triggers db) (fun () ->
      for i = 0 to rows - 1 do
        Table.insert tbl
          [| Value.Int i;
             Value.Int (zipf_sample t z);
             Value.Str (Printf.sprintf "item%03d" (uniform t 500));
             Value.Int (uniform t 10_000) |]
      done)

(** Insert a batch of groups-table changes *through SQL DML* so capture
    triggers fire (used by the IVM benchmarks). *)
let apply_groups_delta (db : Database.t) (delta : (string * int * bool) list) :
  unit =
  let inserts, deletes = List.partition (fun (_, _, m) -> m) delta in
  if inserts <> [] then begin
    let values =
      String.concat ", "
        (List.map (fun (k, v, _) -> Printf.sprintf "('%s', %d)" k v) inserts)
    in
    ignore (Database.exec db ("INSERT INTO groups VALUES " ^ values))
  end;
  List.iter
    (fun (k, v, _) ->
       ignore
         (Database.exec db
            (Printf.sprintf
               "DELETE FROM groups WHERE group_index = '%s' AND group_value = %d"
               k v)))
    deletes
