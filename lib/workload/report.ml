(** Aligned-table printing for the benchmark harness: each experiment
    prints the same kind of rows/series the paper's demo reports. *)

type t = {
  title : string;
  headers : string list;
  mutable rows : string list list;  (** newest first *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t cells = t.rows <- cells :: t.rows

let cell_f f = Printf.sprintf "%.3f" f
let cell_duration = Timer.pp_duration
let cell_int = string_of_int

let speedup baseline measured =
  if measured <= 0.0 then "inf"
  else Printf.sprintf "%.1fx" (baseline /. measured)

let render t : string =
  let rows = List.rev t.rows in
  let table = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
       List.iteri
         (fun i cell ->
            if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
         row)
    table;
  let sep =
    "  +"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let line row =
    "  |"
    ^ String.concat "|"
        (List.mapi (fun i cell -> Printf.sprintf " %-*s " widths.(i) cell) row)
    ^ "|"
  in
  String.concat "\n"
    (("== " ^ t.title ^ " ==") :: sep :: line t.headers :: sep
     :: List.map line rows
     @ [ sep ])

let print t = print_endline (render t); print_newline ()
