(** Aligned-table printing for the benchmark harness. *)

type t

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit
val cell_f : float -> string
val cell_duration : float -> string
val cell_int : int -> string
val speedup : float -> float -> string
(** [speedup baseline measured] — "3.4x". *)

val render : t -> string
val print : t -> unit
