(** Wall-clock measurement helpers for the benchmark harness. *)

let time (f : unit -> 'a) : float * 'a =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let time_unit (f : unit -> unit) : float = fst (time f)

(** Best-of-[repeats] timing (reduces scheduler noise without the cost of
    a full statistical harness; Bechamel covers the micro level). *)
let best_of ?(repeats = 3) (f : unit -> unit) : float =
  let best = ref infinity in
  for _ = 1 to repeats do
    let dt = time_unit f in
    if dt < !best then best := dt
  done;
  !best

let ms seconds = seconds *. 1e3
let us seconds = seconds *. 1e6

let pp_duration seconds =
  if seconds >= 1.0 then Printf.sprintf "%.2fs" seconds
  else if seconds >= 1e-3 then Printf.sprintf "%.2fms" (seconds *. 1e3)
  else Printf.sprintf "%.1fus" (seconds *. 1e6)
