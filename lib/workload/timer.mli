(** Wall-clock measurement helpers for the benchmark harness. *)

val time : (unit -> 'a) -> float * 'a
val time_unit : (unit -> unit) -> float
val best_of : ?repeats:int -> (unit -> unit) -> float
val ms : float -> float
val us : float -> float
val pp_duration : float -> string
(** "1.23s" / "4.56ms" / "7.8us". *)
