(** TPC-H-lite: a scaled-down, self-generated slice of the TPC-H schema
    (customer / orders / lineitem) used by the join-view benchmarks and
    the warehouse example. Deterministic under a seed; dates, Zipfian
    customers, and a realistic revenue expression exercise the engine's
    type surface. *)

open Openivm_engine

let customer_ddl =
  "CREATE TABLE customer(c_custkey INTEGER PRIMARY KEY, c_name VARCHAR, \
   c_nationkey INTEGER, c_acctbal DOUBLE)"

let orders_ddl =
  "CREATE TABLE orders(o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER, \
   o_orderstatus VARCHAR, o_orderdate DATE, o_totalprice DOUBLE)"

let lineitem_ddl =
  "CREATE TABLE lineitem(l_orderkey INTEGER, l_linenumber INTEGER, \
   l_quantity INTEGER, l_extendedprice DOUBLE, l_discount DOUBLE, \
   l_returnflag VARCHAR, l_shipdate DATE)"

(* join keys are indexed, so the IVM fill terms run as index nested
   loops over the deltas — the ART-for-joins point of paper §2 *)
let index_ddl =
  [ "CREATE INDEX idx_lineitem_orderkey ON lineitem(l_orderkey)";
    "CREATE INDEX idx_orders_custkey ON orders(o_custkey)" ]

let all_ddl = [ customer_ddl; orders_ddl; lineitem_ddl ] @ index_ddl

let nations = 25
let statuses = [| "O"; "F"; "P" |]
let flags = [| "N"; "R"; "A" |]

type t = {
  rng : Random.State.t;
  zipf : Datagen.zipf;
  customers : int;
  mutable next_order : int;
}

let create ?(seed = 7) ~customers () =
  { rng = Random.State.make [| seed |];
    zipf = Datagen.zipf customers;
    customers;
    next_order = 0 }

let epoch_1992 = Value.days_from_civil ~year:1992 ~month:1 ~day:1
let day_range = 7 * 365

let random_date t = epoch_1992 + Random.State.int t.rng day_range

let insert_customers (db : Database.t) (t : t) : unit =
  let tbl = Catalog.find_table (Database.catalog db) "customer" in
  Trigger.without_hooks (Database.triggers db) (fun () ->
      for i = 0 to t.customers - 1 do
        Table.insert tbl
          [| Value.Int i;
             Value.Str (Printf.sprintf "Customer#%06d" i);
             Value.Int (Random.State.int t.rng nations);
             Value.Float (Random.State.float t.rng 10_000.0 -. 1_000.0) |]
      done)

(** One order with 1–4 line items, returned as SQL statements so capture
    triggers fire (the IVM paths see them). *)
let order_statements (t : t) : string list =
  let okey = t.next_order in
  t.next_order <- t.next_order + 1;
  let cust = Datagen.zipf_sample { Datagen.rng = t.rng } t.zipf in
  let date = random_date t in
  let lines = 1 + Random.State.int t.rng 4 in
  let items =
    List.init lines (fun ln ->
        let qty = 1 + Random.State.int t.rng 50 in
        let price = float_of_int qty *. (900.0 +. Random.State.float t.rng 200.0) in
        let discount = float_of_int (Random.State.int t.rng 11) /. 100.0 in
        Printf.sprintf "(%d, %d, %d, %.2f, %.2f, '%s', '%s')" okey (ln + 1)
          qty price discount
          flags.(Random.State.int t.rng (Array.length flags))
          (Value.date_to_string (date + Random.State.int t.rng 90)))
  in
  let total =
    (* the engine recomputes exact revenue; the header total is cosmetic *)
    float_of_int (lines * 1000)
  in
  [ Printf.sprintf
      "INSERT INTO orders VALUES (%d, %d, '%s', '%s', %.2f)" okey cust
      statuses.(Random.State.int t.rng (Array.length statuses))
      (Value.date_to_string date) total;
    "INSERT INTO lineitem VALUES " ^ String.concat ", " items ]

(** Statements for a returns/cancellation event: drop one past order. *)
let cancel_statements (t : t) : string list =
  if t.next_order = 0 then []
  else begin
    let okey = Random.State.int t.rng t.next_order in
    [ Printf.sprintf "DELETE FROM lineitem WHERE l_orderkey = %d" okey;
      Printf.sprintf "DELETE FROM orders WHERE o_orderkey = %d" okey ]
  end

(** The warehouse view of the example/bench: revenue per nation. *)
let revenue_view =
  "CREATE MATERIALIZED VIEW nation_revenue AS SELECT customer.c_nationkey, \
   SUM(lineitem.l_extendedprice * (1 - lineitem.l_discount)) AS revenue, \
   COUNT(*) AS line_count FROM lineitem JOIN orders ON lineitem.l_orderkey \
   = orders.o_orderkey JOIN customer ON orders.o_custkey = \
   customer.c_custkey GROUP BY customer.c_nationkey"

let revenue_reference =
  "SELECT customer.c_nationkey, SUM(lineitem.l_extendedprice * (1 - \
   lineitem.l_discount)) AS revenue, COUNT(*) AS line_count FROM lineitem \
   JOIN orders ON lineitem.l_orderkey = orders.o_orderkey JOIN customer ON \
   orders.o_custkey = customer.c_custkey GROUP BY customer.c_nationkey"

(** Populate [db] with [orders] orders (and their line items). *)
let populate (db : Database.t) (t : t) ~orders : unit =
  insert_customers db t;
  for _ = 1 to orders do
    List.iter (fun sql -> ignore (Database.exec db sql)) (order_statements t)
  done
