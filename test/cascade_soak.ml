(** Cascade soak (`dune build @cascade`, also part of the default
    runtest and `@ci`): drive a seeded random DML workload through a
    3-level view stack (base → grouped aggregate → view-on-view →
    global) under every combine strategy and a mixed eager/lazy refresh
    assignment, checking after every batch that {e each} level agrees
    exactly with a full recompute of its defining query. A second pass
    replays the same seed with the Z-set consolidation pass disabled and
    asserts the stack contents are identical — consolidation is an
    optimization, never a semantics change. Deterministic (one LCG seed)
    and bounded (~1.5k statements total). *)

module Flags = Openivm.Flags
module Runner = Openivm.Runner
open Openivm_engine

(* exercise real cross-domain execution even on single-core CI hosts *)
let () = Openivm.Parallel.oversubscribe := true

let failures = ref 0
let checks = ref 0

let check name ok =
  incr checks;
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

(* seeded LCG so the soak is reproducible without any library RNG *)
let rng_state = ref 0

let rand n =
  rng_state := (!rng_state * 1103515245 + 12345) land 0x3FFFFFFF;
  !rng_state mod n

let regions = [| "north"; "south"; "east"; "west"; "centre"; "rim" |]

let random_stmts () =
  match rand 10 with
  | 0 | 1 | 2 | 3 ->
    [ Printf.sprintf "INSERT INTO sales VALUES ('%s', %d), ('%s', %d)"
        regions.(rand (Array.length regions)) (rand 100)
        regions.(rand (Array.length regions)) (rand 100) ]
  | 4 | 5 ->
    [ Printf.sprintf "UPDATE sales SET amount = amount + %d WHERE region = '%s'"
        (1 + rand 9) regions.(rand (Array.length regions)) ]
  | 6 ->
    [ Printf.sprintf "UPDATE sales SET region = '%s' WHERE amount %% 7 = %d"
        regions.(rand (Array.length regions)) (rand 7) ]
  | 7 | 8 ->
    [ Printf.sprintf "DELETE FROM sales WHERE region = '%s' AND amount > %d"
        regions.(rand (Array.length regions)) (rand 120) ]
  | _ ->
    (* duplicate-heavy churn: feed the consolidation pass +/- pairs *)
    [ Printf.sprintf "INSERT INTO sales VALUES ('%s', 999), ('%s', 999)"
        regions.(rand 2) regions.(rand 2);
      "DELETE FROM sales WHERE amount = 999" ]

let stack_sqls =
  [ "CREATE MATERIALIZED VIEW region_totals AS SELECT region, SUM(amount) \
     AS total, COUNT(*) AS n FROM sales GROUP BY region";
    "CREATE MATERIALIZED VIEW by_size AS SELECT n, SUM(total) AS sum_total, \
     COUNT(*) AS regions FROM region_totals GROUP BY n";
    "CREATE MATERIALIZED VIEW grand AS SELECT SUM(sum_total) AS g, \
     SUM(regions) AS r FROM by_size" ]

(* level 1 eager, levels 2–3 lazy: the eager push-down and the lazy
   topological pull both stay under load in the same run *)
let install_stack ~strategy ~consolidate ~domains db =
  let flags_at level =
    { Flags.default with
      Flags.strategy;
      consolidate_deltas = consolidate;
      domains;
      refresh = (if level = 0 then Flags.Eager else Flags.Lazy) }
  in
  let rec go level registry = function
    | [] -> List.rev registry
    | sql :: rest ->
      let v =
        Runner.install ~flags:(flags_at level) ~registry:(List.rev registry)
          db sql
      in
      go (level + 1) (v :: registry) rest
  in
  go 0 [] stack_sqls

let run_soak ~strategy ~consolidate ?(domains = 1) ~seed ~batches () =
  rng_state := seed;
  let db =
    let db = Database.create () in
    ignore
      (Database.exec db "CREATE TABLE sales(region VARCHAR, amount INTEGER)");
    ignore
      (Database.exec db
         "INSERT INTO sales VALUES ('north', 10), ('south', 7), ('west', 3)");
    db
  in
  let stack = install_stack ~strategy ~consolidate ~domains db in
  let top = List.nth stack (List.length stack - 1) in
  for batch = 1 to batches do
    for _ = 1 to 2 + rand 4 do
      List.iter (fun sql -> ignore (Database.exec db sql)) (random_stmts ())
    done;
    (* pull the whole DAG up to date through the top of the stack *)
    Runner.force_refresh top;
    List.iter
      (fun v ->
         check
           (Printf.sprintf "%s/batch %d: %s = recompute"
              (Flags.strategy_to_string strategy) batch (Runner.view_name v))
           (Runner.visible_rows v = Runner.recompute_rows v))
      stack
  done;
  List.map (fun v -> (Runner.view_name v, Runner.visible_rows v)) stack

let () =
  let strategies =
    [ Flags.Upsert_linear; Flags.Union_regroup; Flags.Outer_join_merge;
      Flags.Rederive_affected; Flags.Full_recompute ]
  in
  List.iter
    (fun strategy ->
       Printf.printf "cascade soak: %s\n%!" (Flags.strategy_to_string strategy);
       let with_consol =
         run_soak ~strategy ~consolidate:true ~seed:2024 ~batches:25 ()
       in
       let without =
         run_soak ~strategy ~consolidate:false ~seed:2024 ~batches:25 ()
       in
       check
         (Flags.strategy_to_string strategy
          ^ ": consolidation on/off yields identical stacks")
         (with_consol = without);
       (* replay the same seed with domain-parallel propagation: sharded
          fills and concurrent same-level refreshes must reproduce the
          sequential stack bit for bit *)
       let parallel =
         run_soak ~strategy ~consolidate:true ~domains:3 ~seed:2024
           ~batches:25 ()
       in
       check
         (Flags.strategy_to_string strategy
          ^ ": domains=3 yields the identical stack")
         (with_consol = parallel))
    strategies;
  if !failures = 0 then
    Printf.printf "cascade soak: %d checks, all green\n" !checks
  else begin
    Printf.printf "cascade soak: %d/%d checks FAILED\n" !failures !checks;
    exit 1
  end
