(** Chaos soak test (`dune build @chaos`, also part of the default
    runtest): run a seeded transactional workload through the cross-system
    pipeline under each fault mode — and under all of them at once — and
    assert that after [Pipeline.recover] the materialized view, the OLAP
    replicas and a full recompute of the defining query agree exactly,
    and that the faults demonstrably fired. Deterministic (seeded fault
    and workload RNGs) and bounded (zero simulated latencies, ~3k
    statements total). *)

open Openivm_engine
open Openivm_htap

(* exercise real cross-domain execution even on single-core CI hosts *)
let () = Openivm.Parallel.oversubscribe := true

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

(* on a convergence failure, show where recovery time went *)
let check_converged name (r : Pipeline.recovery) =
  check (name ^ ": view converges with full recompute") r.Pipeline.converged;
  if not r.Pipeline.converged then
    List.iter (fun l -> Printf.printf "  %s\n%!" l) (Pipeline.pp_phases r)

let groups_schema =
  "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER);"

let groups_view =
  "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
   SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP BY \
   group_index"

let join_schema =
  "CREATE TABLE sales(cust INTEGER, amount INTEGER); CREATE TABLE \
   customers(cust INTEGER, region VARCHAR);"

let join_view =
  "CREATE MATERIALIZED VIEW rs AS SELECT customers.region, \
   SUM(sales.amount) AS total FROM sales JOIN customers ON sales.cust = \
   customers.cust GROUP BY customers.region"

(* The supervisor loop: feed statements, sync periodically, restart the
   OLAP side whenever a crash fault downs it, and finish with the recovery
   ladder. Returns the final recovery outcome. *)
let drive p statements ~sync_every : Pipeline.recovery =
  List.iteri
    (fun i sql ->
       ignore (Pipeline.exec_oltp p sql);
       if (i + 1) mod sync_every = 0 then begin
         ignore (Pipeline.sync p);
         if Pipeline.crashed p then ignore (Pipeline.recover p)
       end)
    statements;
  Pipeline.recover p

let replicas_match p =
  List.for_all
    (fun base ->
       let rows db =
         List.sort String.compare
           (List.map Row.to_string
              (Table.to_rows (Catalog.find_table (Database.catalog db) base)))
       in
       rows (Oltp.db (Pipeline.oltp p)) = rows (Pipeline.olap p))
    p.Pipeline.base_tables

let run_groups ~name ?(domains = 1) ~spec ~tx_count
    (checks : Pipeline.t -> unit) =
  Printf.printf "chaos soak [%s]: %d transactions...\n%!" name tx_count;
  let faults = Fault.create ~seed:0xBADF00D spec in
  let bridge = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 ~faults () in
  let p =
    Pipeline.create ~flags:{ Openivm.Flags.default with domains }
      ~oltp_latency:0.0 ~bridge ~backoff_base:1e-6
      ~schema_sql:groups_schema ~view_sql:groups_view ()
  in
  let tx = Txgen.create ~seed:31337 ~group_domain:12 () in
  List.iter (fun sql -> ignore (Pipeline.exec_oltp p sql)) (Txgen.seed_rows tx 100);
  let r = drive p (Txgen.batch tx tx_count) ~sync_every:10 in
  check_converged name r;
  check (name ^ ": nothing left in the outbox")
    (List.for_all
       (fun base -> Oltp.pending (Pipeline.oltp p) ~base = 0)
       p.Pipeline.base_tables);
  checks p

(* Join view: replicas are live on the OLAP side, so faults also attack
   replica maintenance. Inline workload — Txgen speaks only the groups
   schema. *)
let run_join ~name ?(domains = 1) ~spec ~tx_count () =
  Printf.printf "chaos soak [%s]: %d transactions...\n%!" name tx_count;
  let faults = Fault.create ~seed:0xD15EA5E spec in
  let bridge = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 ~faults () in
  let p =
    Pipeline.create ~flags:{ Openivm.Flags.default with domains }
      ~oltp_latency:0.0 ~bridge ~backoff_base:1e-6
      ~schema_sql:join_schema ~view_sql:join_view ()
  in
  let rng = Random.State.make [| 1729 |] in
  for c = 1 to 20 do
    ignore (Pipeline.exec_oltp p
              (Printf.sprintf "INSERT INTO customers VALUES (%d, 'r%d')" c (c mod 5)))
  done;
  let statements =
    List.init tx_count (fun _ ->
        match Random.State.int rng 10 with
        | 0 | 1 ->
          Printf.sprintf "DELETE FROM sales WHERE cust = %d AND amount %% 13 = %d"
            (1 + Random.State.int rng 20) (Random.State.int rng 13)
        | 2 ->
          Printf.sprintf
            "UPDATE sales SET amount = amount + %d WHERE cust = %d AND amount %% 7 = %d"
            (1 + Random.State.int rng 5)
            (1 + Random.State.int rng 20)
            (Random.State.int rng 7)
        | _ ->
          Printf.sprintf "INSERT INTO sales VALUES (%d, %d)"
            (1 + Random.State.int rng 20) (Random.State.int rng 500))
  in
  let r = drive p statements ~sync_every:10 in
  check_converged name r;
  check (name ^ ": replicas match the OLTP base tables") (replicas_match p);
  check (name ^ ": no silent replica divergence")
    ((Pipeline.stats p).Pipeline.replica_misses = 0)

let () =
  (* each fault mode on its own, hot enough to fire constantly *)
  run_groups ~name:"drop 20%" ~tx_count:500
    ~spec:{ Fault.none with Fault.drop = 0.2 }
    (fun p -> check "drop: retries fired" ((Pipeline.stats p).Pipeline.retries > 0));
  run_groups ~name:"duplicate 20%" ~tx_count:500
    ~spec:{ Fault.none with Fault.duplicate = 0.2 }
    (fun p -> check "duplicate: dedup fired" ((Pipeline.stats p).Pipeline.deduped > 0));
  run_groups ~name:"reorder 20%" ~tx_count:500
    ~spec:{ Fault.none with Fault.reorder = 0.2 }
    (fun p ->
       check "reorder: holdbacks happened"
         (Fault.injected (Bridge.faults p.Pipeline.bridge) Fault.Reorder > 0);
       check "reorder: late copies deduplicated"
         ((Pipeline.stats p).Pipeline.deduped > 0));
  run_groups ~name:"corrupt 20%" ~tx_count:500
    ~spec:{ Fault.none with Fault.corrupt = 0.2 }
    (fun p ->
       check "corrupt: checksum rejects fired"
         ((Pipeline.stats p).Pipeline.checksum_failures > 0));
  run_groups ~name:"crash 20%" ~tx_count:500
    ~spec:{ Fault.none with Fault.crash = 0.2 }
    (fun p ->
       let s = Pipeline.stats p in
       check "crash: crashes rolled back" (s.Pipeline.crashes > 0);
       check "crash: recoveries ran" (s.Pipeline.recoveries > 0));

  (* the acceptance gauntlet: every fault at >= 10% over >= 500 tx *)
  let everything = Fault.chaos ~drop:0.12 ~duplicate:0.12 ~reorder:0.12
      ~corrupt:0.12 ~crash:0.12 () in
  run_groups ~name:"all faults 12%" ~tx_count:600 ~spec:everything
    (fun p ->
       let s = Pipeline.stats p in
       let f = Bridge.faults p.Pipeline.bridge in
       check "all: every wire fault kind fired"
         (List.for_all (fun k -> Fault.injected f k > 0) Fault.wire_kinds);
       check "all: retries > 0" (s.Pipeline.retries > 0);
       check "all: deduplicated batches > 0" (s.Pipeline.deduped > 0);
       check "all: crashes rolled back > 0" (s.Pipeline.crashes > 0));
  run_join ~name:"join view, all faults 12%" ~tx_count:600 ~spec:everything ();

  (* the same gauntlet with domain-parallel propagation: faults plus
     sharded refresh must still converge to the recompute *)
  run_groups ~name:"all faults 12%, domains=2" ~domains:2 ~tx_count:600
    ~spec:everything
    (fun p ->
       let s = Pipeline.stats p in
       check "parallel: retries > 0" (s.Pipeline.retries > 0);
       check "parallel: crashes rolled back > 0" (s.Pipeline.crashes > 0));
  run_join ~name:"join view, all faults 12%, domains=2" ~domains:2
    ~tx_count:600 ~spec:everything ();

  if !failures = 0 then print_endline "chaos soak: all checks passed"
  else begin
    Printf.printf "chaos soak: %d check(s) FAILED\n" !failures;
    exit 1
  end
