-- openivm-fuzz reproducer v1
-- seed: 1874
-- max-steps: 20
-- strategies: all
-- dialects: all
-- note: two joined dims both expose a `label` column; grouping by both used to fail at install with "ambiguous column reference" because the planner dropped qualifiers when rewriting projections over the aggregate
-- schema:
CREATE TABLE fact(k2 INTEGER, k3 INTEGER, v1 INTEGER, v2 INTEGER)
CREATE TABLE dim_k2(k2 INTEGER, label VARCHAR)
CREATE TABLE dim_k3(k3 INTEGER, label VARCHAR)
-- setup:
INSERT INTO dim_k2 VALUES (0, 'a'), (1, 'b'), (2, 'c')
INSERT INTO dim_k3 VALUES (0, 'x'), (1, 'y')
INSERT INTO fact VALUES (0, 0, 5, 7)
INSERT INTO fact VALUES (1, 1, 3, 2)
INSERT INTO fact VALUES (2, 0, 9, 1)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT dim_k2.label AS g1, dim_k3.label AS g2, SUM(fact.v1 + fact.v2) AS a1 FROM fact JOIN dim_k2 ON fact.k2 = dim_k2.k2 JOIN dim_k3 ON fact.k3 = dim_k3.k3 GROUP BY dim_k2.label, dim_k3.label
-- workload:
INSERT INTO fact VALUES (1, 0, 4, 4)
DELETE FROM fact WHERE k2 = 0
UPDATE fact SET v1 = v1 + 10 WHERE k3 = 1
