-- openivm-fuzz reproducer v1
-- seed: 0
-- max-steps: 5
-- strategies: all
-- dialects: all
-- note: AVG decomposes into SUM/COUNT; NULL inputs must not count toward the divisor and an all-NULL group averages to NULL
-- schema:
CREATE TABLE fact(k1 VARCHAR, v1 INTEGER)
-- setup:
INSERT INTO fact VALUES ('a', 10)
INSERT INTO fact VALUES ('a', 20)
INSERT INTO fact VALUES ('b', NULL)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT k1 AS g1, AVG(v1) AS m, COUNT(v1) AS c FROM fact GROUP BY k1
-- workload:
INSERT INTO fact VALUES ('a', NULL)
UPDATE fact SET v1 = NULL WHERE v1 = 20
DELETE FROM fact WHERE v1 = 10
INSERT INTO fact VALUES ('b', 7)
UPDATE fact SET v1 = v1 + 1 WHERE k1 = 'b'
