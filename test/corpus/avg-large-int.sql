-- openivm-fuzz reproducer v1
-- seed: 0
-- max-steps: 8
-- strategies: all
-- dialects: all
-- note: AVG over large ints near 2^53 diverged between the executor (float accumulator rounding on every addition) and the IVM path (exact integer SUM state divided once); the executor now accumulates integers exactly like SUM and rounds once at the division, matching DuckDB's exact large-int AVG
-- schema:
CREATE TABLE fact(k2 INTEGER, v1 INTEGER)
-- setup:
INSERT INTO fact VALUES (0, 9007199254740992)
INSERT INTO fact VALUES (0, 1)
INSERT INTO fact VALUES (0, 1)
INSERT INTO fact VALUES (1, 4503599627370496)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT k2 AS g1, AVG(v1) AS a1, SUM(v1) AS a2, COUNT(v1) AS a3 FROM fact GROUP BY k2
-- workload:
INSERT INTO fact VALUES (1, 4503599627370497)
INSERT INTO fact VALUES (0, 9007199254740993)
DELETE FROM fact WHERE v1 = 1
UPDATE fact SET v1 = v1 + 1 WHERE k2 = 1
