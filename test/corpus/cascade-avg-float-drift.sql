-- openivm-fuzz reproducer v1
-- seed: 209460
-- max-steps: 20
-- strategies: all
-- dialects: all
-- note: float-state drift under cascades — downstream AVG over an upstream AVG column accumulated a float sum incrementally; retracting a previously added float (93.666... - 43.666...) left last-bit residue (50.000000000000007 vs the recompute's exact 50.0). Fixed by routing SUM/AVG over non-integer arguments to rederive/full, like MIN/MAX: float addition is not exactly invertible.
-- schema:
CREATE TABLE fact(k1 VARCHAR, k2 INTEGER, k3 INTEGER, v1 INTEGER, v2 INTEGER)
CREATE TABLE dim_k2(k2 INTEGER, label VARCHAR)
CREATE TABLE dim_k3(k3 INTEGER, label VARCHAR)
-- setup:
INSERT INTO dim_k3 VALUES (1, 'a')
INSERT INTO dim_k3 VALUES (2, 'a')
INSERT INTO fact VALUES ('a', 2, 2, 21, 64)
INSERT INTO fact VALUES ('a', 2, 2, 61, 0)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT fact.k2 AS g1, fact.k3 AS g2, fact.k2 % 2 AS g3, MIN(fact.v2) AS a1, COUNT(*) AS a2, AVG(fact.v2) AS a3 FROM fact JOIN dim_k3 ON fact.k3 = dim_k3.k3 WHERE fact.v1 > 2 GROUP BY fact.k2, fact.k3, fact.k2 % 2
CREATE MATERIALIZED VIEW v2 AS SELECT AVG(a3) AS b1 FROM v
-- workload:
INSERT INTO fact VALUES ('a', NULL, 0, 0, 0), ('a', NULL, 1, 33, 50)
INSERT INTO fact VALUES ('a', 2, 2, 10, 67)
DELETE FROM fact WHERE k3 = 2
