-- openivm-fuzz reproducer v1
-- seed: 0
-- max-steps: 5
-- strategies: all
-- dialects: all
-- note: a flat (non-aggregate) view over duplicate rows exercises Z-set multiplicities — deleting one copy must leave the others visible
-- schema:
CREATE TABLE fact(k1 VARCHAR, v1 INTEGER)
-- setup:
INSERT INTO fact VALUES ('a', 1)
INSERT INTO fact VALUES ('a', 1)
INSERT INTO fact VALUES ('b', 2)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT k1, v1 FROM fact WHERE v1 > 0
-- workload:
INSERT INTO fact VALUES ('a', 1)
DELETE FROM fact WHERE k1 = 'b'
INSERT INTO fact VALUES ('b', -5)
UPDATE fact SET v1 = 3 WHERE k1 = 'b'
DELETE FROM fact WHERE k1 = 'a' AND v1 = 1
