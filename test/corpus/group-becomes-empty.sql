-- openivm-fuzz reproducer v1
-- seed: 0
-- max-steps: 4
-- strategies: all
-- dialects: all
-- note: a group whose rows are all deleted must disappear from the view (not linger as a zero-count tombstone), and re-inserting must bring it back
-- schema:
CREATE TABLE fact(k1 VARCHAR, v1 INTEGER)
-- setup:
INSERT INTO fact VALUES ('a', 1)
INSERT INTO fact VALUES ('a', 2)
INSERT INTO fact VALUES ('b', 3)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT k1 AS g1, SUM(v1) AS s, COUNT(*) AS n FROM fact GROUP BY k1
-- workload:
DELETE FROM fact WHERE k1 = 'a'
INSERT INTO fact VALUES ('a', 9)
DELETE FROM fact WHERE k1 = 'b'
DELETE FROM fact WHERE k1 = 'a'
