-- openivm-fuzz reproducer v1
-- seed: 0
-- max-steps: 5
-- strategies: all
-- dialects: all
-- note: deltas on the dimension side of a join fan out to every matching fact row; deleting and re-inserting a dim row must retract and restore whole groups
-- schema:
CREATE TABLE fact(k2 INTEGER, v1 INTEGER)
CREATE TABLE dim(k2 INTEGER, label VARCHAR)
-- setup:
INSERT INTO dim VALUES (0, 'x'), (1, 'y')
INSERT INTO fact VALUES (0, 1)
INSERT INTO fact VALUES (0, 2)
INSERT INTO fact VALUES (1, 3)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT dim.label AS g1, SUM(fact.v1) AS s, COUNT(*) AS n FROM fact JOIN dim ON fact.k2 = dim.k2 GROUP BY dim.label
-- workload:
DELETE FROM dim WHERE k2 = 0
INSERT INTO fact VALUES (0, 10)
INSERT INTO dim VALUES (0, 'z')
UPDATE fact SET v1 = v1 + 1 WHERE k2 = 1
DELETE FROM fact WHERE k2 = 1
