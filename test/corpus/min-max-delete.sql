-- openivm-fuzz reproducer v1
-- seed: 0
-- max-steps: 6
-- strategies: all
-- dialects: all
-- note: MIN/MAX must survive deleting the current extreme of a group (the non-invertible case that forces per-group recompute)
-- schema:
CREATE TABLE fact(k1 VARCHAR, v1 INTEGER)
-- setup:
INSERT INTO fact VALUES ('a', 10)
INSERT INTO fact VALUES ('a', 20)
INSERT INTO fact VALUES ('a', 30)
INSERT INTO fact VALUES ('b', 5)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT k1 AS g1, MIN(v1) AS lo, MAX(v1) AS hi FROM fact GROUP BY k1
-- workload:
DELETE FROM fact WHERE v1 = 30
DELETE FROM fact WHERE v1 = 10
INSERT INTO fact VALUES ('a', 1)
DELETE FROM fact WHERE v1 = 1
UPDATE fact SET v1 = v1 + 100 WHERE k1 = 'b'
DELETE FROM fact WHERE k1 = 'b'
