-- openivm-fuzz reproducer v1
-- seed: 0
-- max-steps: 5
-- strategies: all
-- dialects: all
-- note: NULLs both as aggregate input (skipped by SUM/COUNT(col)) and as a group key (NULL is its own group)
-- schema:
CREATE TABLE fact(k1 VARCHAR, v1 INTEGER, v2 INTEGER)
-- setup:
INSERT INTO fact VALUES (NULL, 1, NULL)
INSERT INTO fact VALUES ('a', NULL, 2)
INSERT INTO fact VALUES ('a', 3, NULL)
-- view:
CREATE MATERIALIZED VIEW v AS SELECT k1 AS g1, SUM(v1) AS s, COUNT(v2) AS c2, COUNT(*) AS n FROM fact GROUP BY k1
-- workload:
INSERT INTO fact VALUES (NULL, NULL, NULL)
UPDATE fact SET v1 = NULL WHERE k1 = 'a'
INSERT INTO fact VALUES ('b', 4, 4)
DELETE FROM fact WHERE k1 IS NULL
UPDATE fact SET v2 = 8 WHERE v2 IS NULL
