(** Crash-injection soak (`dune build @crash`, also part of the default
    runtest): run a seeded workload through the durable store while
    storage faults kill the process at WAL appends, backfill chunk
    boundaries and the checkpoint/truncate window; after every simulated
    death, reopen the directory and resume from the first uncommitted
    statement. The recovered store must converge exactly to an in-memory
    oracle that ran the whole workload without crashing — across all five
    combine strategies — and a store-backed HTAP pipeline restarted
    mid-stream must land on the same rows as one that never died.
    Deterministic (seeded fault and workload RNGs) and bounded. *)

open Openivm_engine
module Store = Openivm_store.Store
module Fault = Openivm_htap.Fault
module Pipeline = Openivm_htap.Pipeline
module Runner = Openivm.Runner
module Flags = Openivm.Flags

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "openivm_crash" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let groups_schema =
  "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)"

let qg_sql =
  "CREATE MATERIALIZED VIEW qg AS SELECT group_index, SUM(group_value) AS \
   s, COUNT(*) AS n FROM groups GROUP BY group_index"

let qtop_sql =
  "CREATE MATERIALIZED VIEW qtop AS SELECT SUM(s) AS total FROM qg"

let view_rows store name =
  match Store.find_view store name with
  | Some v -> Runner.visible_rows v
  | None ->
    check (Printf.sprintf "view %s survived" name) false;
    []

(* ------------------------------------------------------------------ *)
(* The main soak: workload × strategy under probabilistic storage
   faults, driven by a supervisor that reopens the directory after
   every injected death and retries the interrupted statement. *)

type step =
  | Stmt of string
  | Install of string * string  (* view name, CREATE MATERIALIZED VIEW *)
  | Checkpoint

let workload ~seed : step list =
  let rng = Random.State.make [| seed |] in
  let steps = ref [] in
  let add s = steps := s :: !steps in
  add (Stmt groups_schema);
  (* enough seed rows that the qg backfill spans many chunks *)
  for i = 1 to 30 do
    add
      (Stmt
         (Printf.sprintf "INSERT INTO groups VALUES ('g%d', %d)" (i mod 7)
            (Random.State.int rng 100)))
  done;
  add (Install ("qg", qg_sql));
  for i = 1 to 90 do
    (match Random.State.int rng 10 with
     | 0 | 1 ->
       add
         (Stmt
            (Printf.sprintf
               "DELETE FROM groups WHERE group_index = 'g%d' AND \
                group_value %% 5 = %d"
               (Random.State.int rng 7) (Random.State.int rng 5)))
     | 2 ->
       add
         (Stmt
            (Printf.sprintf
               "UPDATE groups SET group_value = group_value + %d WHERE \
                group_index = 'g%d'"
               (1 + Random.State.int rng 9)
               (Random.State.int rng 7)))
     | _ ->
       add
         (Stmt
            (Printf.sprintf "INSERT INTO groups VALUES ('g%d', %d)"
               (Random.State.int rng 7) (Random.State.int rng 100))));
    if i = 30 then add (Install ("qtop", qtop_sql));
    if i mod 25 = 0 then add Checkpoint
  done;
  List.rev !steps

(* Feed the workload, treating every [Fault.Injected_crash] as a process
   death: reopen the same directory (recovery may itself be killed —
   recover again) and retry the interrupted statement. The retry is safe
   because a crashed append never leaves a valid record, and an install
   whose [Install] record survived is finished by recovery itself. *)
let drive_store ~flags ~faults ~dir steps : Store.t * int =
  let chunk_rows = 4 in
  let crashes = ref 0 in
  let open_store () = Store.open_ ~flags ~faults ~chunk_rows ~dir () in
  let store = ref (open_store ()) in
  let rec reopen () =
    incr crashes;
    match open_store () with
    | s -> store := s
    | exception Fault.Injected_crash -> reopen ()
  in
  let rec attempt step =
    match step with
    | Stmt sql -> (
        try ignore (Store.exec !store sql)
        with Fault.Injected_crash ->
          reopen ();
          attempt step)
    | Install (name, sql) ->
      if Store.find_view !store name = None then (
        try ignore (Store.exec !store sql)
        with Fault.Injected_crash ->
          reopen ();
          (* recovery resumes a logged install to completion; only an
             install whose record was lost needs to start over *)
          attempt step)
    | Checkpoint -> (
        try ignore (Store.checkpoint !store)
        with Fault.Injected_crash ->
          (* the checkpoint either landed (killed before truncation) or
             did not; recovery copes with both, no retry needed *)
          reopen ())
  in
  List.iter attempt steps;
  (!store, !crashes)

let run_strategy strategy =
  let sname = Flags.strategy_to_string strategy in
  Printf.printf "crash soak [%s]...\n%!" sname;
  let seed = 0xC0FFEE + Hashtbl.hash sname in
  let flags = { Flags.default with Flags.strategy } in
  let spec =
    Fault.storage_chaos ~torn_tail:0.02 ~truncated_record:0.02
      ~corrupt_record:0.02 ~chunk_crash:0.1 ~truncate_crash:0.3 ()
  in
  let faults = Fault.create ~seed spec in
  let steps = workload ~seed in
  (* the no-crash oracle: same statements, plain in-memory extension *)
  let odb = Database.create ~name:"oracle" () in
  let oext = Runner.load ~flags odb in
  List.iter
    (function
      | Stmt sql | Install (_, sql) -> ignore (Runner.exec_ext oext sql)
      | Checkpoint -> ())
    steps;
  with_temp_dir (fun dir ->
      let store, crashes = drive_store ~flags ~faults ~dir steps in
      check (sname ^ ": the soak actually crashed") (crashes > 0);
      check (sname ^ ": recovered store verifies") (Store.verify store);
      List.iter
        (fun vname ->
           let oracle =
             match Runner.find_view oext vname with
             | Some v -> Runner.visible_rows v
             | None -> []
           in
           check
             (Printf.sprintf "%s: %s matches the no-crash oracle" sname vname)
             (view_rows store vname = oracle))
        [ "qg"; "qtop" ];
      (* one clean restart on top: committed state is stable *)
      let before = List.map (view_rows store) [ "qg"; "qtop" ] in
      Store.close store;
      let store2 = Store.open_ ~flags ~dir () in
      check
        (sname ^ ": clean reopen preserves every view")
        (List.map (view_rows store2) [ "qg"; "qtop" ] = before);
      check (sname ^ ": clean reopen verifies") (Store.verify store2);
      Store.close store2);
  faults

(* ------------------------------------------------------------------ *)
(* Targeted crash points: one scheduled injection per storage fault
   kind, each asserting the precise recovery contract. *)

let seed_store ~faults dir =
  let store = Store.open_ ~faults ~chunk_rows:3 ~dir () in
  ignore (Store.exec store groups_schema);
  store

(* A statement killed inside its WAL append is not committed: recovery
   discards the tail and the retry applies it exactly once. *)
let lost_statement kind =
  let name = "scheduled " ^ Fault.kind_to_string kind in
  with_temp_dir (fun dir ->
      let faults = Fault.create ~seed:11 Fault.none in
      let store = seed_store ~faults dir in
      ignore (Store.exec store "INSERT INTO groups VALUES ('a', 1)");
      ignore (Store.exec store qg_sql);
      let before = Store.committed_seq store in
      Fault.schedule faults kind ~after:0;
      (match Store.exec store "INSERT INTO groups VALUES ('b', 2)" with
       | exception Fault.Injected_crash -> ()
       | _ -> check (name ^ ": crash fired") false);
      check (name ^ ": injection counted") (Fault.injected faults kind = 1);
      let store = Store.open_ ~faults ~chunk_rows:3 ~dir () in
      check
        (name ^ ": uncommitted statement lost")
        (Store.committed_seq store = before);
      check
        (name ^ ": torn tail detected")
        (Store.last_recovery store).Store.torn_tail;
      ignore (Store.exec store "INSERT INTO groups VALUES ('b', 2)");
      check
        (name ^ ": retry applies exactly once")
        (view_rows store "qg" = [ "(a, 1, 1)"; "(b, 2, 1)" ]);
      check (name ^ ": verifies") (Store.verify store);
      Store.close store)

(* A backfill killed at chunk K resumes at chunk K — never chunk 0. *)
let killed_backfill_resumes () =
  let name = "scheduled chunk_crash" in
  with_temp_dir (fun dir ->
      let faults = Fault.create ~seed:13 Fault.none in
      let store = seed_store ~faults dir in
      for i = 1 to 10 do
        ignore
          (Store.exec store
             (Printf.sprintf "INSERT INTO groups VALUES ('g%d', %d)" (i mod 3)
                i))
      done;
      Fault.schedule faults Fault.Chunk_crash ~after:2;
      (match Store.exec store qg_sql with
       | exception Fault.Injected_crash -> ()
       | _ -> check (name ^ ": crash fired") false);
      let store = Store.open_ ~faults ~chunk_rows:3 ~dir () in
      let resumed = (Store.last_recovery store).Store.backfills_resumed in
      (match List.assoc_opt "qg" resumed with
       | Some k ->
         check (name ^ ": resumed mid-backfill, not at chunk 0") (k = 2)
       | None -> check (name ^ ": resume reported") false);
      check (name ^ ": backfill completes") (Store.verify store);
      check
        (name ^ ": view converges after resume")
        (view_rows store "qg"
         = [ "(g0, 18, 3)"; "(g1, 22, 4)"; "(g2, 15, 3)" ]);
      Store.close store)

(* Killed between writing the checkpoint and truncating the WAL: the
   tail overlaps the checkpoint, and replay must skip it entirely. *)
let truncate_crash_no_double_apply () =
  let name = "scheduled truncate_crash" in
  with_temp_dir (fun dir ->
      let faults = Fault.create ~seed:17 Fault.none in
      let store = seed_store ~faults dir in
      ignore (Store.exec store qg_sql);
      ignore (Store.exec store "INSERT INTO groups VALUES ('a', 5)");
      ignore (Store.exec store "INSERT INTO groups VALUES ('b', 7)");
      Fault.schedule faults Fault.Truncate_crash ~after:0;
      (match Store.checkpoint store with
       | exception Fault.Injected_crash -> ()
       | _ -> check (name ^ ": crash fired") false);
      let store = Store.open_ ~faults ~chunk_rows:3 ~dir () in
      let r = Store.last_recovery store in
      check (name ^ ": checkpoint landed") (r.Store.checkpoint_seq > 0);
      check (name ^ ": overlapping tail skipped") (r.Store.replayed = 0);
      check
        (name ^ ": no double apply")
        (view_rows store "qg" = [ "(a, 5, 1)"; "(b, 7, 1)" ]);
      check (name ^ ": verifies") (Store.verify store);
      Store.close store)

(* ------------------------------------------------------------------ *)
(* Restart equivalence over one data directory: a store-backed pipeline
   whose journal append dies mid-batch, reopened and re-driven, must
   land on exactly the rows of a pipeline that never crashed. The
   redelivered batches are deduplicated by the recovered watermarks. *)

let bridge_statements =
  List.init 40 (fun i ->
      Printf.sprintf "INSERT INTO groups VALUES ('g%d', %d)" (i mod 5)
        (i * 3))

(* Attach a pipeline to the store's OLAP database (installing qg if this
   store has never seen it), journal every applied batch, and feed the
   whole OLTP history; [crash_at_sync] arms a torn journal append just
   before that sync. Returns the pipeline unless the injected death
   escaped. *)
let drive_bridge store ~faults ~crash_at_sync :
  [ `Done of Pipeline.t | `Crashed ] =
  let v =
    match Store.find_view store "qg" with
    | Some v -> v
    | None -> (
        match Store.exec store qg_sql with
        | `Installed v -> v
        | `Result _ -> failwith "install did not install")
  in
  let p =
    Pipeline.create ~oltp_latency:0.0 ~backoff_base:1e-6
      ~schema_sql:(groups_schema ^ ";") ~view_sql:qg_sql
      ~olap:(Store.db store) ~view:v
      ~on_apply:(fun ~source ~seq ~replica rows ->
          Store.log_batch store ~view:"qg" ~source ~seq ~replica rows)
      ()
  in
  let syncs = ref 0 in
  try
    List.iteri
      (fun i sql ->
         ignore (Pipeline.exec_oltp p sql);
         if (i + 1) mod 8 = 0 then begin
           incr syncs;
           if crash_at_sync = Some !syncs then
             Fault.schedule faults Fault.Torn_tail ~after:0;
           ignore (Pipeline.sync p)
         end)
      bridge_statements;
    ignore (Pipeline.sync p);
    `Done p
  with Fault.Injected_crash -> `Crashed

let restart_equivalence () =
  let name = "bridge restart equivalence" in
  (* control: no faults, one uninterrupted run *)
  let control =
    with_temp_dir (fun dir ->
        let faults = Fault.create ~seed:3 Fault.none in
        let store = Store.open_ ~faults ~chunk_rows:4 ~dir () in
        ignore (Store.exec store groups_schema);
        (match drive_bridge store ~faults ~crash_at_sync:None with
         | `Done p ->
           check (name ^ ": control converges") (Pipeline.verify p)
         | `Crashed -> check (name ^ ": control never crashes") false);
        let rows = view_rows store "qg" in
        Store.close store;
        rows)
  in
  with_temp_dir (fun dir ->
      let faults = Fault.create ~seed:5 Fault.none in
      let store = Store.open_ ~faults ~chunk_rows:4 ~dir () in
      ignore (Store.exec store groups_schema);
      (* the batch lands in memory and its watermark advances, but the
         journal record is torn — the process dies before the outbox
         acknowledgement could have happened *)
      (match drive_bridge store ~faults ~crash_at_sync:(Some 2) with
       | `Crashed -> ()
       | `Done _ ->
         check (name ^ ": the journal append died mid-batch") false);
      (* the process is gone; reopen the directory and re-drive the
         whole OLTP history through a fresh pipeline attached to the
         recovered store — journaled batches dedup on the recovered
         watermark, the torn one is redelivered *)
      let store2 = Store.open_ ~faults ~chunk_rows:4 ~dir () in
      check
        (name ^ ": journaled batches replayed")
        ((Store.last_recovery store2).Store.replayed > 0);
      (match drive_bridge store2 ~faults ~crash_at_sync:None with
       | `Done p ->
         check (name ^ ": restarted pipeline converges") (Pipeline.verify p);
         check
           (name ^ ": recovered watermark deduplicated redelivery")
           ((Pipeline.stats p).Pipeline.deduped > 0)
       | `Crashed -> check (name ^ ": restarted run stays up") false);
      check
        (name ^ ": same rows as the run that never died")
        (view_rows store2 "qg" = control);
      (* no Store.verify here: the bridge keeps base rows on the OLTP
         side (a linear view needs no OLAP replica), so recomputing the
         defining query against the store's empty base table is not the
         invariant — a clean reopen preserving the rows is *)
      Store.close store2;
      let store3 = Store.open_ ~chunk_rows:4 ~dir () in
      check
        (name ^ ": clean reopen preserves the journaled view")
        (view_rows store3 "qg" = control);
      Store.close store3)

(* ------------------------------------------------------------------ *)

let () =
  let fault_handles = List.map run_strategy Flags.all_strategies in
  check "soak: every storage fault kind fired at least once"
    (List.for_all
       (fun k ->
          List.exists (fun f -> Fault.injected f k > 0) fault_handles)
       Fault.storage_kinds);
  List.iter lost_statement
    [ Fault.Torn_tail; Fault.Truncated_record; Fault.Corrupt_record ];
  killed_backfill_resumes ();
  truncate_crash_no_double_apply ();
  restart_equivalence ();
  if !failures = 0 then print_endline "crash soak: all checks passed"
  else begin
    Printf.printf "crash soak: %d check(s) FAILED\n" !failures;
    exit 1
  end
