(** The bounded fuzz smoke run wired into `dune runtest` (and `dune build
    @fuzz`): replay every checked-in reproducer under test/corpus/, then
    run a fixed-seed differential fuzz campaign. OPENIVM_FUZZ_CASES
    overrides the case count for long local runs, e.g.

      OPENIVM_FUZZ_CASES=2000 dune build @fuzz

    Exits non-zero on any failure; every failure message carries the exact
    `openivm fuzz` command that reproduces it. *)

let () =
  let cases =
    match Sys.getenv_opt "OPENIVM_FUZZ_CASES" with
    | Some s ->
      (match int_of_string_opt s with
       | Some n when n > 0 -> n
       | _ ->
         prerr_endline ("fuzz: bad OPENIVM_FUZZ_CASES value " ^ s);
         exit 2)
    | None -> 100
  in
  let corpus_dir = "corpus" in
  let replayed = Openivm_fuzz.Corpus.replay ~dir:corpus_dir () in
  let corpus_failures =
    List.filter (fun r -> r.Openivm_fuzz.Corpus.error <> None) replayed
  in
  Printf.printf "fuzz: corpus replay: %d case(s), %d failure(s)\n%!"
    (List.length replayed)
    (List.length corpus_failures);
  List.iter
    (fun (r : Openivm_fuzz.Corpus.replay_result) ->
       match r.error with
       | Some msg -> Printf.printf "fuzz: corpus FAIL %s\n%s\n%!" r.file msg
       | None -> ())
    corpus_failures;
  let config =
    { Openivm_fuzz.Campaign.default with
      base_seed = 42; cases; max_steps = 20;
      log = (fun s -> Printf.printf "%s\n%!" s) }
  in
  let report = Openivm_fuzz.Campaign.run config in
  print_endline (Openivm_fuzz.Campaign.summary report);
  (* the domain-parallel axis: a smaller campaign where every case is
     checked at domains = 2 as well — parallel propagation must equal
     full recompute on exactly the cases the sequential oracle accepts *)
  let parallel_config =
    { Openivm_fuzz.Campaign.default with
      base_seed = 4100; cases = max 10 (cases / 4); max_steps = 16;
      queries = 0; domains = [ 2 ];
      log = (fun s -> Printf.printf "%s\n%!" s) }
  in
  let parallel_report = Openivm_fuzz.Campaign.run parallel_config in
  print_endline
    ("domains=2 axis " ^ Openivm_fuzz.Campaign.summary parallel_report);
  (* a short crash-replay pass: cases re-run through the durable store
     under seeded storage faults (kill + reopen at every injected death)
     must converge to their no-crash run — kept small, every case pays
     for a store per strategy *)
  let crash_config =
    { Openivm_fuzz.Campaign.default with
      base_seed = 4242; cases = 5; max_steps = 12; queries = 0;
      crash_seed = Some 99;
      log = (fun s -> Printf.printf "%s\n%!" s) }
  in
  let crash_report = Openivm_fuzz.Campaign.run crash_config in
  print_endline ("crash axis " ^ Openivm_fuzz.Campaign.summary crash_report);
  if corpus_failures <> []
     || report.Openivm_fuzz.Campaign.failures <> []
     || parallel_report.Openivm_fuzz.Campaign.failures <> []
     || crash_report.Openivm_fuzz.Campaign.failures <> []
  then exit 1
