let () =
  Alcotest.run "openivm"
    [ ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("value", Test_value.suite);
      ("vec", Test_vec.suite);
      ("vexec", Test_vexec.suite);
      ("schema", Test_schema.suite);
      ("art", Test_art.suite);
      ("expr", Test_expr.suite);
      ("exec", Test_exec.suite);
      ("sql-conformance", Test_sql_conformance.suite);
      ("random-queries", Test_random_queries.suite);
      ("optimizer", Test_optimizer.suite);
      ("dml", Test_dml.suite);
      ("zset", Test_zset.suite);
      ("dbsp", Test_dbsp.suite);
      ("circuit", Test_circuit.suite);
      ("diagnostics", Test_diagnostics.suite);
      ("shape", Test_shape.suite);
      ("compiler", Test_compiler.suite);
      ("propagate", Test_propagate.suite);
      ("advisor", Test_advisor.suite);
      ("golden-sql", Test_golden_sql.suite);
      ("runner", Test_runner.suite);
      ("cascade", Test_cascade.suite);
      ("random-views", Test_random_views.suite);
      ("fuzz", Test_fuzz.suite);
      ("htap", Test_htap.suite);
      ("portability", Test_portability.suite);
      ("csv", Test_csv.suite);
      ("snapshot", Test_snapshot.suite);
      ("tpch", Test_tpch.suite);
      ("obs", Test_obs.suite);
      ("store", Test_store.suite);
      ("server", Test_server.suite);
    ]
