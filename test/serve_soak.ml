(** Serve soak (`dune build @serve`, also part of the default runtest
    and `@ci`): concurrent churn against the serving layer. For every
    combine strategy, a live {!Openivm_server.Server} is started on an
    ephemeral port and five session threads drive seeded scripted
    workloads — plain DML units, multi-statement transactions, units
    that must fail and roll back, client-side rollbacks and reads —
    through the single-writer scheduler, while the main thread fetches
    [/metrics] over raw HTTP mid-churn. The gate is the sequential
    replay oracle: the scheduler's journal (the serial order the ticks
    actually applied) is replayed single-session into a fresh database
    pinned to the row-at-a-time engine, and every view plus the base
    table must come out byte-identical — interleaved sessions, rollbacks
    and consolidated ticks change nothing about the result. Each run
    also asserts, via the scheduler's counters, that at least one tick
    consolidated units from two or more sessions into one propagation.

    Per-thread scripts are precomputed from one LCG seed before the
    threads start, so thread interleaving is the only nondeterminism —
    and the journal captures exactly the order that won. *)

module Flags = Openivm.Flags
module Runner = Openivm.Runner
module Srv = Openivm_server
module Scheduler = Srv.Scheduler
module Session = Srv.Session
open Openivm_engine

let failures = ref 0
let checks = ref 0
let check_lock = Mutex.create ()

let check name ok =
  Mutex.lock check_lock;
  incr checks;
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n%!" name
  end;
  Mutex.unlock check_lock

(* seeded LCG so the soak is reproducible without any library RNG *)
let rand state n =
  state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
  !state mod n

let regions = [| "north"; "south"; "east"; "west"; "centre"; "rim" |]

let sales_ddl = "CREATE TABLE sales(region VARCHAR, amount INTEGER)"
let sales_seed =
  "INSERT INTO sales VALUES ('north', 10), ('south', 7), ('west', 3)"

let view_sqls =
  [ "CREATE MATERIALIZED VIEW region_totals AS SELECT region, SUM(amount) \
     AS total, COUNT(*) AS n FROM sales GROUP BY region";
    "CREATE MATERIALIZED VIEW grand AS SELECT SUM(total) AS g, SUM(n) AS \
     cnt FROM region_totals" ]

(* One session's scripted workload. [Txn] commits as a single
   all-or-nothing unit; [Bad] must fail and roll back without touching
   anything; [Client_rollback] never reaches the scheduler at all. *)
type action =
  | Dml of string
  | Txn of string list
  | Bad of string
  | Client_rollback of string list
  | Read of string

let script ~seed ~len =
  let st = ref seed in
  let r n = rand st n in
  let region () = regions.(r (Array.length regions)) in
  let ins () =
    Printf.sprintf "INSERT INTO sales VALUES ('%s', %d), ('%s', %d)"
      (region ()) (r 100) (region ()) (r 100)
  in
  List.init len (fun _ ->
      match r 12 with
      | 0 | 1 | 2 | 3 -> Dml (ins ())
      | 4 | 5 ->
        Dml
          (Printf.sprintf
             "UPDATE sales SET amount = amount + %d WHERE region = '%s'"
             (1 + r 9) (region ()))
      | 6 ->
        Dml
          (Printf.sprintf
             "DELETE FROM sales WHERE region = '%s' AND amount > %d"
             (region ()) (r 120))
      | 7 -> Txn [ ins (); ins () ]
      | 8 -> Bad "INSERT INTO sales VALUES ('boom')"
      | 9 -> Client_rollback [ ins () ]
      | _ -> Read "SELECT region, total, n FROM region_totals")

let run_action ~who sess = function
  | Dml sql ->
    (match Session.exec sess sql with
     | Session.Affected _ -> ()
     | Session.Failed { code; message } ->
       check (Printf.sprintf "%s: dml failed [%s] %s" who code message) false
     | Session.Overloaded r ->
       check (Printf.sprintf "%s: dml overloaded: %s" who r) false
     | _ -> check (who ^ ": unexpected dml reply") false)
  | Txn stmts ->
    (match Session.exec sess "BEGIN" with
     | Session.Msg _ -> ()
     | _ -> check (who ^ ": BEGIN refused") false);
    List.iter
      (fun sql ->
         match Session.exec sess sql with
         | Session.Queued _ -> ()
         | _ -> check (who ^ ": txn statement not buffered") false)
      stmts;
    (match Session.exec sess "COMMIT" with
     | Session.Affected _ -> ()
     | Session.Failed { message; _ } ->
       check (Printf.sprintf "%s: commit failed: %s" who message) false
     | Session.Overloaded r ->
       check (Printf.sprintf "%s: commit overloaded: %s" who r) false
     | _ -> check (who ^ ": unexpected commit reply") false)
  | Bad sql ->
    (match Session.exec sess sql with
     | Session.Failed _ -> ()
     | _ -> check (who ^ ": bad unit did not fail") false)
  | Client_rollback stmts ->
    ignore (Session.exec sess "BEGIN");
    List.iter (fun sql -> ignore (Session.exec sess sql)) stmts;
    (match Session.exec sess "ROLLBACK" with
     | Session.Msg _ -> ()
     | _ -> check (who ^ ": ROLLBACK refused") false)
  | Read sql ->
    (match Session.exec sess sql with
     | Session.Rows _ -> ()
     | Session.Failed { message; _ } ->
       check (Printf.sprintf "%s: read failed: %s" who message) false
     | _ -> check (who ^ ": unexpected read reply") false)

(* --- raw HTTP /metrics probe --------------------------------------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* kept total: a refused connection reads as one named check failing,
   not a crash of the whole soak *)
let metrics_probe srv =
  try
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
         Unix.connect fd
           (Unix.ADDR_INET (Unix.inet_addr_loopback, Srv.Server.port srv));
         let oc = Unix.out_channel_of_descr fd in
         let ic = Unix.in_channel_of_descr fd in
         output_string oc "GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n";
         flush oc;
         let buf = Buffer.create 1024 in
         (try
            while true do
              Buffer.add_string buf (input_line ic);
              Buffer.add_char buf '\n'
            done
          with End_of_file -> ());
         Buffer.contents buf)
  with Unix.Unix_error (e, _, _) ->
    Printf.sprintf "CONNECT FAILED: %s" (Unix.error_message e)

(* --- one strategy run ---------------------------------------------- *)

let n_sessions = 5
let actions_per_session = 60

let expect_install sess sql =
  match Session.exec sess sql with
  | Session.Msg _ -> ()
  | Session.Failed { message; _ } ->
    Printf.printf "  FAIL install: %s\n%!" message;
    incr failures
  | _ ->
    Printf.printf "  FAIL install: unexpected reply\n%!";
    incr failures

let run_strategy ~strategy ~seed =
  let name = Flags.strategy_to_string strategy in
  let db = Database.create () in
  ignore (Database.exec db sales_ddl);
  ignore (Database.exec db sales_seed);
  let flags = { Flags.default with Flags.strategy; refresh = Flags.Lazy } in
  let ext = Runner.load ~flags db in
  let srv = Srv.Server.start ~listen:(`Tcp ("127.0.0.1", 0)) ext in
  Fun.protect ~finally:(fun () -> Srv.Server.stop srv) @@ fun () ->
  let sched = Srv.Server.scheduler srv in
  let setup = Session.create sched ~tenant:"setup" in
  List.iter (expect_install setup) view_sqls;
  Session.close setup;
  Scheduler.set_record_journal sched true;
  (* a deterministically consolidated tick: two sessions' units queued
     before anyone awaits, then one tick applies both *)
  let s1 = Session.create sched ~tenant:"prime-a" in
  let s2 = Session.create sched ~tenant:"prime-b" in
  let submit s sql =
    match
      Scheduler.submit sched ~session_id:(Session.id s) ~tenant:(Session.tenant s)
        [ sql ]
    with
    | Scheduler.Queued u -> u
    | Scheduler.Rejected r ->
      Printf.printf "  FAIL %s: prime submit rejected: %s\n%!" name r;
      incr failures;
      exit 1
  in
  let p1 = submit s1 "INSERT INTO sales VALUES ('east', 1)" in
  let p2 = submit s2 "INSERT INTO sales VALUES ('rim', 2)" in
  check (name ^ ": priming tick applied both sessions' units")
    (Scheduler.tick sched = 2);
  (match (Scheduler.await sched p1, Scheduler.await sched p2) with
   | Scheduler.Applied _, Scheduler.Applied _ -> ()
   | _ -> check (name ^ ": priming units applied") false);
  Session.close s1;
  Session.close s2;
  (* the concurrent phase: n scripted session threads *)
  let sessions =
    Array.init n_sessions (fun i ->
        Session.create sched ~tenant:(Printf.sprintf "tenant-%d" i))
  in
  let scripts =
    Array.init n_sessions (fun i ->
        script ~seed:(seed + (7919 * (i + 1))) ~len:actions_per_session)
  in
  let threads =
    Array.mapi
      (fun i actions ->
         Thread.create
           (fun actions ->
              let who = Printf.sprintf "%s/session %d" name i in
              List.iter (run_action ~who sessions.(i)) actions)
           actions)
      scripts
  in
  (* mid-churn: the metrics endpoint must answer while ticks run *)
  Thread.delay 0.005;
  let body = metrics_probe srv in
  check (name ^ ": /metrics answers 200 during the soak")
    (contains "HTTP/1.1 200 OK" body);
  check (name ^ ": /metrics is prometheus exposition")
    (contains Openivm_obs.Report.prometheus_content_type body
     && contains "openivm_server_ticks_total" body
     && contains "openivm_server_sessions_active" body);
  Array.iter Thread.join threads;
  Array.iter Session.close sessions;
  Scheduler.drain sched;
  let st = Scheduler.stats sched in
  check (name ^ ": ticks ran") (st.Scheduler.ticks > 0);
  check (name ^ ": >= 1 tick consolidated >= 2 sessions")
    (st.Scheduler.multi_session_ticks >= 1);
  check (name ^ ": failed units rolled back") (st.Scheduler.units_failed >= 1);
  check (name ^ ": queue drained") (st.Scheduler.queue_depth = 0);
  (* the live side must satisfy the IVM invariant on its own engine *)
  List.iter
    (fun v ->
       check
         (Printf.sprintf "%s: live %s = recompute" name (Runner.view_name v))
         (Runner.visible_rows v = Runner.recompute_rows v))
    ext.Runner.ext_views;
  (* sequential replay oracle: the journal is the serial history the
     ticks chose; replayed single-session on the row engine it must
     reproduce the exact same base table and view contents *)
  let journal = Scheduler.journal sched in
  check (name ^ ": journal non-empty") (journal <> []);
  let odb = Database.create () in
  odb.Database.exec_engine <- Exec.Row;
  ignore (Database.exec odb sales_ddl);
  ignore (Database.exec odb sales_seed);
  let oracle_views =
    List.fold_left
      (fun registry sql ->
         Runner.install ~flags ~registry:(List.rev registry) odb sql :: registry)
      [] view_sqls
    |> List.rev
  in
  List.iter (fun sql -> ignore (Database.exec odb sql)) journal;
  List.iter Runner.force_refresh oracle_views;
  let sorted db sql =
    let r = Database.query db sql in
    List.sort String.compare (List.map Row.to_string r.Database.rows)
  in
  check (name ^ ": base table identical to sequential replay")
    (sorted db "SELECT * FROM sales" = sorted odb "SELECT * FROM sales");
  List.iter
    (fun ov ->
       let vname = Runner.view_name ov in
       match Runner.find_view ext vname with
       | None -> check (name ^ ": live view " ^ vname ^ " exists") false
       | Some lv ->
         check
           (Printf.sprintf "%s: %s identical to sequential replay" name vname)
           (Runner.visible_rows lv = Runner.visible_rows ov))
    oracle_views;
  Printf.printf
    "serve soak: %-17s %d ticks, %d units (%d failed), %d multi-session, \
     max batch %d\n%!"
    name st.Scheduler.ticks st.Scheduler.units_applied
    st.Scheduler.units_failed st.Scheduler.multi_session_ticks
    st.Scheduler.max_tick_units

let () =
  Sys.catch_break true;
  let strategies =
    [ Flags.Upsert_linear; Flags.Union_regroup; Flags.Outer_join_merge;
      Flags.Rederive_affected; Flags.Full_recompute ]
  in
  List.iteri
    (fun i strategy -> run_strategy ~strategy ~seed:(2026 + (i * 101)))
    strategies;
  if !failures = 0 then
    Printf.printf "serve soak: %d checks, all green\n" !checks
  else begin
    Printf.printf "serve soak: %d/%d checks FAILED\n" !failures !checks;
    exit 1
  end
