open Openivm_engine

let setup ~rows ~domain =
  let db = Database.create () in
  ignore (Database.exec db Openivm_workload.Datagen.groups_ddl);
  Openivm_workload.Datagen.populate_groups ~domain db
    (Openivm_workload.Datagen.create ())
    ~rows;
  db

let shape_of db sql =
  match
    Openivm.Shape.analyze (Database.catalog db) ~view_name:"v"
      (Openivm_sql.Parser.parse_select sql)
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let sum_view = "SELECT group_index, SUM(group_value) AS s FROM groups GROUP BY group_index"
let minmax_view = "SELECT group_index, MIN(group_value) AS lo FROM groups GROUP BY group_index"

let suite =
  [ Util.tc "small deltas over a large base choose the linear upsert" (fun () ->
        let db = setup ~rows:50_000 ~domain:500 in
        let advice =
          Openivm.Advisor.advise (Database.catalog db) (shape_of db sum_view)
            ~expected_delta:100
        in
        Alcotest.(check bool) "linear" true
          (advice.Openivm.Advisor.recommended = Openivm.Flags.Upsert_linear));
    Util.tc "deltas comparable to the base choose full recomputation" (fun () ->
        let db = setup ~rows:2_000 ~domain:100 in
        let advice =
          Openivm.Advisor.advise (Database.catalog db) (shape_of db sum_view)
            ~expected_delta:50_000
        in
        Alcotest.(check bool) "full" true
          (advice.Openivm.Advisor.recommended = Openivm.Flags.Full_recompute));
    Util.tc "min/max never gets the linear strategy" (fun () ->
        let db = setup ~rows:20_000 ~domain:200 in
        let advice =
          Openivm.Advisor.advise (Database.catalog db) (shape_of db minmax_view)
            ~expected_delta:10
        in
        Alcotest.(check bool) "not linear" true
          (advice.Openivm.Advisor.recommended <> Openivm.Flags.Upsert_linear);
        Alcotest.(check bool) "no linear candidate" true
          (List.for_all
             (fun e -> e.Openivm.Advisor.strategy <> Openivm.Flags.Upsert_linear)
             advice.Openivm.Advisor.estimates));
    Util.tc "an index on the group key makes rederive affordable for min/max"
      (fun () ->
         let db = setup ~rows:50_000 ~domain:500 in
         Util.exec db "CREATE INDEX idx_gi ON groups(group_index)";
         let advice =
           Openivm.Advisor.advise (Database.catalog db) (shape_of db minmax_view)
             ~expected_delta:10
         in
         Alcotest.(check bool) "rederive" true
           (advice.Openivm.Advisor.recommended = Openivm.Flags.Rederive_affected);
         (* without the index, rederive's estimate degrades to a base scan:
            its cost must be far higher than with the index (full and
            rederive become adjacent, so either recommendation is fine) *)
         let db2 = setup ~rows:50_000 ~domain:500 in
         let advice2 =
           Openivm.Advisor.advise (Database.catalog db2) (shape_of db2 minmax_view)
             ~expected_delta:10
         in
         let cost_of advice strategy =
           (List.find
              (fun e -> e.Openivm.Advisor.strategy = strategy)
              advice.Openivm.Advisor.estimates)
             .Openivm.Advisor.cost
         in
         Alcotest.(check bool) "indexed rederive is far cheaper" true
           (cost_of advice Openivm.Flags.Rederive_affected *. 10.0
            < cost_of advice2 Openivm.Flags.Rederive_affected));
    Util.tc "estimates are sorted cheapest-first and cover candidates" (fun () ->
        let db = setup ~rows:10_000 ~domain:100 in
        let advice =
          Openivm.Advisor.advise (Database.catalog db) (shape_of db sum_view)
            ~expected_delta:100
        in
        let costs = List.map (fun e -> e.Openivm.Advisor.cost) advice.Openivm.Advisor.estimates in
        Alcotest.(check bool) "sorted" true (costs = List.sort compare costs);
        Alcotest.(check int) "five candidates" 5 (List.length costs));
    Util.tc "compile_advised installs a working view with the chosen strategy"
      (fun () ->
         let db = setup ~rows:5_000 ~domain:100 in
         let compiled, advice =
           Openivm.Advisor.compile_advised (Database.catalog db)
             ~expected_delta:50
             ("CREATE MATERIALIZED VIEW v AS " ^ sum_view)
         in
         Alcotest.(check bool) "strategy matches advice" true
           (compiled.Openivm.Compiler.flags.Openivm.Flags.strategy
            = advice.Openivm.Advisor.recommended));
    Util.tc "advisor choice tracks the measured winner across regimes" (fun () ->
        (* measure all three strategies at two delta sizes and check the
           advisor picks the measured winner (or within 2x of it) *)
        List.iter
          (fun delta ->
             let time strategy =
               let db = setup ~rows:20_000 ~domain:200 in
               let flags = { Openivm.Flags.default with strategy } in
               let v =
                 Openivm.Runner.install ~flags db
                   ("CREATE MATERIALIZED VIEW v AS " ^ sum_view)
               in
               let gen = Openivm_workload.Datagen.create ~seed:3 () in
               Openivm_workload.Datagen.apply_groups_delta db
                 (Openivm_workload.Datagen.groups_delta_rows ~domain:200 gen
                    ~rows:delta);
               Openivm_workload.Timer.time_unit (fun () ->
                   Openivm.Runner.force_refresh v)
             in
             let measured =
               [ (Openivm.Flags.Upsert_linear, time Openivm.Flags.Upsert_linear);
                 (Openivm.Flags.Rederive_affected, time Openivm.Flags.Rederive_affected);
                 (Openivm.Flags.Full_recompute, time Openivm.Flags.Full_recompute) ]
             in
             let best_time =
               List.fold_left (fun acc (_, t) -> min acc t) infinity measured
             in
             let db = setup ~rows:20_000 ~domain:200 in
             let advice =
               Openivm.Advisor.advise (Database.catalog db)
                 (shape_of db sum_view) ~expected_delta:delta
             in
             let advised_time =
               List.assoc advice.Openivm.Advisor.recommended measured
             in
             Alcotest.(check bool)
               (Printf.sprintf "delta %d: advised within 3x of best" delta)
               true
               (advised_time <= best_time *. 3.0))
          [ 50; 5_000 ]);
  ]
