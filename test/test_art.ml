open Openivm_engine

(* --- unit tests --- *)

let insert_all t bindings = List.iter (fun (k, v) -> Art.insert t k v) bindings

let suite_unit =
  [ Util.tc "empty tree" (fun () ->
        let t : int Art.t = Art.create () in
        Alcotest.(check int) "length" 0 (Art.length t);
        Alcotest.(check (option int)) "find" None (Art.find t "x"));
    Util.tc "single insert and find" (fun () ->
        let t = Art.create () in
        Art.insert t "hello" 1;
        Alcotest.(check (option int)) "found" (Some 1) (Art.find t "hello");
        Alcotest.(check (option int)) "absent" None (Art.find t "hell");
        Alcotest.(check (option int)) "absent2" None (Art.find t "hello!"));
    Util.tc "replace on duplicate key" (fun () ->
        let t = Art.create () in
        Art.insert t "k" 1;
        Art.insert t "k" 2;
        Alcotest.(check int) "length" 1 (Art.length t);
        Alcotest.(check (option int)) "value" (Some 2) (Art.find t "k"));
    Util.tc "insert_with combines" (fun () ->
        let t = Art.create () in
        Art.insert_with t ~combine:( + ) "k" 1;
        Art.insert_with t ~combine:( + ) "k" 5;
        Alcotest.(check (option int)) "combined" (Some 6) (Art.find t "k"));
    Util.tc "prefix keys coexist" (fun () ->
        let t = Art.create () in
        insert_all t [ ("a", 1); ("ab", 2); ("abc", 3); ("", 0) ];
        Alcotest.(check (option int)) "a" (Some 1) (Art.find t "a");
        Alcotest.(check (option int)) "ab" (Some 2) (Art.find t "ab");
        Alcotest.(check (option int)) "abc" (Some 3) (Art.find t "abc");
        Alcotest.(check (option int)) "empty" (Some 0) (Art.find t ""));
    Util.tc "node growth to 256 children" (fun () ->
        let t = Art.create () in
        for b = 0 to 255 do
          Art.insert t (Printf.sprintf "%c-key" (Char.chr b)) b
        done;
        Alcotest.(check int) "length" 256 (Art.length t);
        for b = 0 to 255 do
          Alcotest.(check (option int)) "find"
            (Some b)
            (Art.find t (Printf.sprintf "%c-key" (Char.chr b)))
        done;
        let stats = Art.stats t in
        Alcotest.(check int) "one Node256" 1 stats.Art.inner256);
    Util.tc "iteration is in ascending key order" (fun () ->
        let t = Art.create () in
        insert_all t [ ("pear", 1); ("apple", 2); ("fig", 3); ("banana", 4) ];
        Alcotest.(check (list string)) "sorted"
          [ "apple"; "banana"; "fig"; "pear" ]
          (List.map fst (Art.to_list t)));
    Util.tc "remove" (fun () ->
        let t = Art.create () in
        insert_all t [ ("a", 1); ("ab", 2); ("b", 3) ];
        Alcotest.(check bool) "removed" true (Art.remove t "ab");
        Alcotest.(check bool) "already gone" false (Art.remove t "ab");
        Alcotest.(check int) "length" 2 (Art.length t);
        Alcotest.(check (option int)) "a kept" (Some 1) (Art.find t "a");
        Alcotest.(check (option int)) "b kept" (Some 3) (Art.find t "b"));
    Util.tc "remove collapses paths" (fun () ->
        let t = Art.create () in
        insert_all t [ ("shared-prefix-1", 1); ("shared-prefix-2", 2) ];
        Alcotest.(check bool) "rm" true (Art.remove t "shared-prefix-1");
        Alcotest.(check (option int)) "other kept" (Some 2)
          (Art.find t "shared-prefix-2");
        Alcotest.(check bool) "rm last" true (Art.remove t "shared-prefix-2");
        Alcotest.(check int) "empty" 0 (Art.length t));
    Util.tc "min_binding" (fun () ->
        let t = Art.create () in
        insert_all t [ ("m", 1); ("a", 2); ("z", 3) ];
        match Art.min_binding t with
        | Some ("a", 2) -> ()
        | _ -> Alcotest.fail "min");
    Util.tc "of_sorted equals inserts" (fun () ->
        let bindings =
          Array.init 1000 (fun i -> (Printf.sprintf "key%06d" i, i))
        in
        let bulk = Art.of_sorted bindings in
        let incremental = Art.create () in
        Array.iter (fun (k, v) -> Art.insert incremental k v) bindings;
        Alcotest.(check bool) "same contents" true
          (Art.to_list bulk = Art.to_list incremental));
    Util.tc "of_sorted rejects unsorted" (fun () ->
        match Art.of_sorted [| ("b", 1); ("a", 2) |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "accepted unsorted input");
    Util.tc "merge of disjoint ranges" (fun () ->
        let a = Art.of_sorted (Array.init 100 (fun i -> (Printf.sprintf "a%03d" i, i))) in
        let b = Art.of_sorted (Array.init 100 (fun i -> (Printf.sprintf "b%03d" i, i))) in
        Art.merge ~combine:(fun _ x -> x) a b;
        Alcotest.(check int) "merged size" 200 (Art.length a);
        Alcotest.(check (option int)) "left key" (Some 42) (Art.find a "a042");
        Alcotest.(check (option int)) "right key" (Some 99) (Art.find a "b099"));
    Util.tc "merge combines duplicates" (fun () ->
        let a = Art.of_sorted [| ("k1", 1); ("k2", 10) |] in
        let b = Art.of_sorted [| ("k2", 5); ("k3", 7) |] in
        Art.merge ~combine:( + ) a b;
        Alcotest.(check int) "size" 3 (Art.length a);
        Alcotest.(check (option int)) "combined" (Some 15) (Art.find a "k2"));
  ]

(* --- model-based property tests against Hashtbl --- *)

type op =
  | Insert of string * int
  | Remove of string
  | Find of string

let op_gen =
  let open QCheck.Gen in
  let key = map (fun (a, b) -> Printf.sprintf "%s\x00%s" a b)
      (pair (string_size (int_bound 6)) (string_size (int_bound 4))) in
  frequency
    [ (5, map2 (fun k v -> Insert (k, v)) key small_int);
      (2, map (fun k -> Remove k) key);
      (3, map (fun k -> Find k) key) ]

let arbitrary_ops =
  QCheck.make ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Insert (k, v) -> Printf.sprintf "ins %S %d" k v
             | Remove k -> Printf.sprintf "rm %S" k
             | Find k -> Printf.sprintf "find %S" k)
           ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_bound 200) op_gen)

let model_property ops =
  let t = Art.create () in
  let model : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.for_all
    (fun op ->
       match op with
       | Insert (k, v) ->
         Art.insert t k v;
         Hashtbl.replace model k v;
         true
       | Remove k ->
         let removed = Art.remove t k in
         let expected = Hashtbl.mem model k in
         Hashtbl.remove model k;
         removed = expected
       | Find k -> Art.find t k = Hashtbl.find_opt model k)
    ops
  && Art.length t = Hashtbl.length model
  && (* iteration sorted and complete *)
  (let listed = Art.to_list t in
   let sorted_model =
     List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
   in
   (* Art sorts by escaped-key order which equals raw order *)
   List.sort compare listed = sorted_model)

let merge_property (left, right) =
  let build bindings =
    let t = Art.create () in
    List.iter (fun (k, v) -> Art.insert t k v) bindings;
    t
  in
  let a = build left and b = build right in
  (* trees use replace-on-duplicate within each side; model must too *)
  let left_map = Hashtbl.create 64 and right_map = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace left_map k v) left;
  List.iter (fun (k, v) -> Hashtbl.replace right_map k v) right;
  let model = Hashtbl.copy left_map in
  Hashtbl.iter
    (fun k v ->
       match Hashtbl.find_opt model k with
       | Some old -> Hashtbl.replace model k (old + v)
       | None -> Hashtbl.replace model k v)
    right_map;
  Art.merge ~combine:( + ) a b;
  Art.length a = Hashtbl.length model
  && Hashtbl.fold
    (fun k v ok -> ok && Art.find a k = Some v)
    model true

let qcheck =
  let open QCheck in
  let key_gen =
    Gen.map (fun s -> s) (Gen.string_size (Gen.int_bound 8))
  in
  [ Test.make ~count:200 ~name:"ART behaves like a map (model-based)"
      arbitrary_ops model_property;
    Test.make ~count:200 ~name:"ART merge = map union with combine"
      (pair
         (list (pair (make key_gen) small_int))
         (list (pair (make key_gen) small_int)))
      merge_property;
  ]

let suite = suite_unit @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck
