(** Cascading IVM: views-on-views. The dependency DAG (install wiring,
    topological refresh pull, eager push-down), the Z-set delta
    consolidation pass, the IVM2xx guard diagnostics (cycle, dependents,
    direct DML), the visible-column schema restriction for view sources,
    and the cascade.* span taxonomy / injected-clock bookkeeping. *)

module Flags = Openivm.Flags
module Runner = Openivm.Runner
module Compiler = Openivm.Compiler
module Clock = Openivm_obs.Clock
module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics
module Report = Openivm_obs.Report
open Openivm_engine

let sales_db () =
  Util.db_with
    [ "CREATE TABLE sales(region VARCHAR, amount INTEGER)";
      "INSERT INTO sales VALUES ('north', 10), ('north', 5), ('south', 7), \
       ('west', 3)" ]

let v1_sql =
  "CREATE MATERIALIZED VIEW region_totals AS SELECT region, SUM(amount) AS \
   total, COUNT(*) AS n FROM sales GROUP BY region"

(* level 2 groups level 1 by group size: a genuine view-on-view *)
let v2_sql =
  "CREATE MATERIALIZED VIEW by_size AS SELECT n, SUM(total) AS sum_total, \
   COUNT(*) AS regions FROM region_totals GROUP BY n"

(* level 3: a global aggregate over level 2 *)
let v3_sql =
  "CREATE MATERIALIZED VIEW grand AS SELECT SUM(sum_total) AS g, \
   SUM(regions) AS r FROM by_size"

let workload =
  [ "INSERT INTO sales VALUES ('north', 2), ('east', 9)";
    "UPDATE sales SET amount = amount + 1 WHERE region = 'south'";
    "DELETE FROM sales WHERE region = 'west'";
    "INSERT INTO sales VALUES ('south', 7), ('south', 7)";
    "DELETE FROM sales WHERE amount > 9";
    "UPDATE sales SET region = 'north' WHERE region = 'east'" ]

let install_stack ?(flags = Flags.default) db sqls =
  let rec go registry = function
    | [] -> List.rev registry
    | sql :: rest ->
      go (Runner.install ~flags ~registry db sql :: registry) rest
  in
  go [] sqls

let check_stack ~msg views =
  List.iter
    (fun v ->
       Alcotest.(check (list string))
         (Printf.sprintf "%s: %s = recompute" msg (Runner.view_name v))
         (Runner.recompute_rows v) (Runner.visible_rows v))
    views

(* --- correctness across the strategy matrix --- *)

let test_two_level_all_strategies () =
  List.iter
    (fun strategy ->
       let db = sales_db () in
       let flags = { Flags.default with Flags.strategy } in
       let views = install_stack ~flags db [ v1_sql; v2_sql ] in
       let label = Flags.strategy_to_string strategy in
       check_stack ~msg:(label ^ " initial") views;
       List.iter
         (fun stmt ->
            Util.exec db stmt;
            check_stack ~msg:(label ^ " after " ^ stmt) views)
         workload)
    Flags.all_strategies

let test_three_level_all_strategies () =
  List.iter
    (fun strategy ->
       let db = sales_db () in
       let flags = { Flags.default with Flags.strategy } in
       let views = install_stack ~flags db [ v1_sql; v2_sql; v3_sql ] in
       let label = Flags.strategy_to_string strategy in
       check_stack ~msg:(label ^ " initial") views;
       List.iter
         (fun stmt ->
            Util.exec db stmt;
            check_stack ~msg:(label ^ " after " ^ stmt) views)
         workload)
    Flags.all_strategies

let test_eager_pushes_without_pull () =
  let db = sales_db () in
  let flags = { Flags.default with Flags.refresh = Flags.Eager } in
  let views = install_stack ~flags db [ v1_sql; v2_sql; v3_sql ] in
  Util.exec db "INSERT INTO sales VALUES ('east', 4), ('north', 1)";
  Util.exec db "DELETE FROM sales WHERE region = 'west'";
  (* every level propagated inside the DML statements themselves: the
     backing tables are current before any view is queried *)
  List.iter
    (fun v ->
       Alcotest.(check int)
         (Runner.view_name v ^ " has no pending deltas")
         0 v.Runner.pending_deltas)
    views;
  let v3 = List.nth views 2 in
  Alcotest.(check (list string)) "level-3 backing table is already current"
    (Runner.recompute_rows v3)
    (List.sort String.compare
       (Util.sorted_rows db "SELECT g, r FROM grand"))

(* A view reading BOTH a base table and a view derived from that base:
   one statement must not double-count through the two delta paths
   (the deferred-refresh machinery folds both deltas in one refresh). *)
let test_eager_mixed_base_and_view_source () =
  let db = sales_db () in
  let flags = { Flags.default with Flags.refresh = Flags.Eager } in
  let v1 = Runner.install ~flags db v1_sql in
  let v2 =
    Runner.install ~flags ~registry:[ v1 ] db
      "CREATE MATERIALIZED VIEW detail AS SELECT rt.region, SUM(s.amount) \
       AS a, SUM(rt.total) AS t FROM sales s JOIN region_totals rt ON \
       s.region = rt.region GROUP BY rt.region"
  in
  check_stack ~msg:"initial" [ v1; v2 ];
  List.iter
    (fun stmt ->
       Util.exec db stmt;
       check_stack ~msg:("after " ^ stmt) [ v1; v2 ])
    workload

let test_lazy_pull_refreshes_upstreams () =
  let db = sales_db () in
  let views = install_stack db [ v1_sql; v2_sql; v3_sql ] in
  let v3 = List.nth views 2 in
  Util.exec db "INSERT INTO sales VALUES ('east', 8)";
  (* querying only the top of the stack pulls the whole chain *)
  Alcotest.(check (list string)) "top-level query pulls the chain"
    (Runner.recompute_rows v3) (Runner.visible_rows v3);
  List.iter
    (fun v ->
       Alcotest.(check int)
         (Runner.view_name v ^ " drained by the pull")
         0 v.Runner.pending_deltas)
    views

(* --- guard diagnostics --- *)

let test_cycle_rejected () =
  let db = Util.db_with [ "CREATE TABLE w(x INTEGER)" ] in
  (* fabricate a registry entry claiming w depends on the view we are
     about to define over w — installing it must close no cycle *)
  Catalog.register_mat_view (Database.catalog db)
    { Catalog.mat_name = "w"; mat_visible = [ "x" ]; mat_flat = true;
      mat_depends_on = [ "v" ] };
  (match
     Runner.install db
       "CREATE MATERIALIZED VIEW v AS SELECT x, COUNT(*) AS c FROM w GROUP \
        BY x"
   with
   | exception Compiler.Unsupported_view msg ->
     Alcotest.(check bool) "IVM201 carries the code" true
       (String.length msg >= 6 && String.sub msg 0 6 = "IVM201")
   | _ -> Alcotest.fail "cycle was not rejected")

let test_uninstall_guard () =
  let db = sales_db () in
  let views = install_stack db [ v1_sql; v2_sql ] in
  let v1 = List.nth views 0 and v2 = List.nth views 1 in
  (match Runner.uninstall v1 with
   | exception Error.Sql_error msg ->
     Alcotest.(check bool) "IVM202 carries the code" true
       (String.length msg >= 6 && String.sub msg 0 6 = "IVM202")
   | () -> Alcotest.fail "uninstall with dependents was not rejected");
  (* the refused uninstall left the stack fully operational *)
  Util.exec db "INSERT INTO sales VALUES ('east', 2)";
  check_stack ~msg:"after refused uninstall" [ v1; v2 ];
  Runner.uninstall v2;
  Runner.uninstall v1;
  Alcotest.(check bool) "registry empty after ordered drop" true
    (Catalog.mat_view_names (Database.catalog db) = [])

let test_dml_interception () =
  let db = sales_db () in
  let ext = Runner.load db in
  ignore (Runner.exec_ext ext v1_sql);
  ignore (Runner.exec_ext ext v2_sql);
  let expect_ivm203 sql =
    match Runner.exec_ext ext sql with
    | exception Error.Sql_error msg ->
      Alcotest.(check bool) ("IVM203 for " ^ sql) true
        (String.length msg >= 6 && String.sub msg 0 6 = "IVM203")
    | _ -> Alcotest.fail ("direct DML was not intercepted: " ^ sql)
  in
  expect_ivm203 "INSERT INTO region_totals VALUES ('x', 1, 1)";
  expect_ivm203 "UPDATE region_totals SET total = 0";
  expect_ivm203 "DELETE FROM by_size";
  expect_ivm203 "TRUNCATE TABLE region_totals";
  (* DROP of a view with dependents refuses; in DAG order it works *)
  (match Runner.exec_ext ext "DROP TABLE region_totals" with
   | exception Error.Sql_error msg ->
     Alcotest.(check bool) "IVM202 via the extension" true
       (String.length msg >= 6 && String.sub msg 0 6 = "IVM202")
   | _ -> Alcotest.fail "drop with dependents was not rejected");
  ignore (Runner.exec_ext ext "DROP TABLE by_size");
  ignore (Runner.exec_ext ext "DROP TABLE region_totals");
  Alcotest.(check int) "extension registry drained" 0
    (List.length ext.Runner.ext_views)

(* --- the consolidation pass --- *)

let consolidated_total () =
  Metrics.counter_value (Metrics.counter "openivm_consolidated_rows_total")

let test_consolidation_cancels_churn () =
  let db = sales_db () in
  let v = Runner.install db v1_sql in
  let before = consolidated_total () in
  (* +200 / -200: pure churn, zero net delta *)
  for i = 0 to 199 do
    Util.exec db
      (Printf.sprintf "INSERT INTO sales VALUES ('churn', %d)" (i + 1000))
  done;
  Util.exec db "DELETE FROM sales WHERE amount >= 1000";
  Alcotest.(check int) "churn captured raw" 400 v.Runner.pending_deltas;
  Runner.refresh v;
  Alcotest.(check int) "all 400 rows cancelled" 400
    (consolidated_total () - before);
  Util.check_view_consistent db v

let test_consolidation_off_flag () =
  let db = sales_db () in
  let flags = { Flags.default with Flags.consolidate_deltas = false } in
  let v = Runner.install ~flags db v1_sql in
  let before = consolidated_total () in
  Util.exec db "INSERT INTO sales VALUES ('churn', 1), ('churn', 2)";
  Util.exec db "DELETE FROM sales WHERE region = 'churn'";
  Runner.refresh v;
  Alcotest.(check int) "pass disabled: nothing consolidated" 0
    (consolidated_total () - before);
  Util.check_view_consistent db v

let test_consolidation_nets_partial () =
  let db = sales_db () in
  let v = Runner.install db v1_sql in
  (* -('north',10) +('north',10) cancels; +('east',1) survives *)
  Util.exec db "DELETE FROM sales WHERE region = 'north' AND amount = 10";
  Util.exec db "INSERT INTO sales VALUES ('north', 10)";
  Util.exec db "INSERT INTO sales VALUES ('east', 1)";
  Alcotest.(check int) "raw capture" 3 v.Runner.pending_deltas;
  Runner.force_refresh v;
  Util.check_view_consistent db v

(* --- schema restriction for view sources --- *)

let test_flat_upstream_weighted_semantics () =
  let db = sales_db () in
  let v1 =
    Runner.install db
      "CREATE MATERIALIZED VIEW regions AS SELECT region FROM sales"
  in
  let v2 =
    Runner.install ~registry:[ v1 ] db
      "CREATE MATERIALIZED VIEW region_count AS SELECT region, COUNT(*) AS \
       c FROM regions GROUP BY region"
  in
  (* a flat view materializes in weighted form: one backing row per
     distinct tuple. The downstream view is defined over that backing
     table, so duplicates upstream do not multiply downstream. *)
  Util.exec db "INSERT INTO sales VALUES ('north', 99), ('north', 98)";
  check_stack ~msg:"after duplicate inserts" [ v1; v2 ];
  Util.check_rows db ~msg:"one backing row per distinct region"
    "SELECT c FROM region_count WHERE region = 'north'" [ "(1)" ];
  Util.exec db "DELETE FROM sales WHERE region = 'south'";
  check_stack ~msg:"after delete" [ v1; v2 ]

let test_star_over_view_sees_visible_prefix () =
  let db = sales_db () in
  let v1 = Runner.install db v1_sql in
  (* SELECT * over an aggregate view's backing table must expand to the
     visible columns only, not the hidden __ivm_* state *)
  let v2 =
    Runner.install ~registry:[ v1 ] db
      "CREATE MATERIALIZED VIEW copy AS SELECT * FROM region_totals"
  in
  Alcotest.(check (list string)) "visible prefix only"
    [ "region"; "total"; "n" ]
    (Openivm.Shape.visible_names v2.Runner.compiled.Compiler.shape);
  Util.exec db "INSERT INTO sales VALUES ('east', 6)";
  check_stack ~msg:"after insert" [ v1; v2 ]

let test_metadata_depends_on () =
  let db = sales_db () in
  let _views = install_stack db [ v1_sql; v2_sql ] in
  Util.check_rows db ~msg:"DAG edges recorded in metadata"
    "SELECT view_name, depends_on FROM _openivm_views"
    [ "(region_totals, sales)"; "(by_size, region_totals)" ]

(* --- observability: spans, dag levels, injected clock --- *)

let test_cascade_spans_and_levels () =
  Report.reset_all ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
        Span.set_enabled false;
        Clock.use_defaults ();
        Report.reset_all ())
    (fun () ->
       let db = sales_db () in
       let flags = { Flags.default with Flags.refresh = Flags.Eager } in
       let views = install_stack ~flags db [ v1_sql; v2_sql; v3_sql ] in
       Alcotest.(check (list int)) "dag levels" [ 0; 1; 2 ]
         (List.map Runner.dag_level views);
       Span.reset ();
       Util.exec db "INSERT INTO sales VALUES ('north', 1), ('north', 2)";
       let refreshes =
         List.filter (fun (s : Span.t) -> s.Span.name = "refresh")
           (Span.spans ())
       in
       Alcotest.(check (list string)) "one refresh per DAG level"
         [ "Int 0"; "Int 1"; "Int 2" ]
         (List.map
            (fun (s : Span.t) ->
               match List.assoc_opt "dag_level" s.Span.attrs with
               | Some (Span.Int n) -> Printf.sprintf "Int %d" n
               | _ -> "missing")
            refreshes);
       Alcotest.(check bool) "downstream pass has its own span" true
         (Span.find "cascade.downstream" <> None);
       (* two updates to one group consolidate at the next level *)
       Alcotest.(check bool) "consolidation pass has its own span" true
         (Span.find "cascade.consolidate" <> None))

let test_refresh_time_uses_injected_clock () =
  Clock.set_now (Clock.ticker ~start:100.0 ~step:0.25 ());
  Fun.protect
    ~finally:(fun () -> Clock.use_defaults ())
    (fun () ->
       let db = sales_db () in
       let v = Runner.install db v1_sql in
       Util.exec db "INSERT INTO sales VALUES ('east', 1)";
       Runner.refresh v;
       Runner.force_refresh v;
       (* spans are disabled: each refresh reads the clock exactly twice
          (start and end), so two refreshes advance 2 * 0.25s *)
       Alcotest.(check int) "refresh_count" 2 v.Runner.refresh_count;
       Alcotest.(check (float 1e-9)) "refresh_time is deterministic" 0.5
         v.Runner.refresh_time)

let suite =
  [ Util.tc "2-level cascade tracks recompute across all strategies"
      test_two_level_all_strategies;
    Util.tc "3-level stack tracks recompute across all strategies"
      test_three_level_all_strategies;
    Util.tc "eager cascade propagates without a pull"
      test_eager_pushes_without_pull;
    Util.tc "one statement, two delta paths: no double count"
      test_eager_mixed_base_and_view_source;
    Util.tc "lazy query on the top view pulls the whole chain"
      test_lazy_pull_refreshes_upstreams;
    Util.tc "dependency cycles are rejected (IVM201)" test_cycle_rejected;
    Util.tc "uninstall with dependents is rejected (IVM202)"
      test_uninstall_guard;
    Util.tc "direct DML on a maintained view is intercepted (IVM203)"
      test_dml_interception;
    Util.tc "consolidation cancels +/- churn before propagation"
      test_consolidation_cancels_churn;
    Util.tc "consolidate_deltas = false disables the pass"
      test_consolidation_off_flag;
    Util.tc "consolidation keeps net rows" test_consolidation_nets_partial;
    Util.tc "flat upstream: weighted backing rows feed downstream"
      test_flat_upstream_weighted_semantics;
    Util.tc "SELECT * over a view sees the visible prefix only"
      test_star_over_view_sees_visible_prefix;
    Util.tc "metadata records the DAG edges" test_metadata_depends_on;
    Util.tc "cascade.* spans and dag_level attribution"
      test_cascade_spans_and_levels;
    Util.tc "refresh_time flows through the injected clock"
      test_refresh_time_uses_injected_clock ]
