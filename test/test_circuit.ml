(** The DBSP circuit compiled from a view query must track full
    recomputation through random insert/delete workloads. *)

open Openivm_engine
open Openivm_dbsp

let schema_sql =
  [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
    "CREATE TABLE customers(cust INTEGER, region VARCHAR)";
    "CREATE TABLE sales(cust INTEGER, amount INTEGER)" ]

(** Apply a delta both to the engine table (ground truth) and return the
    Z-set form for the circuit. *)
let apply_delta db table (rows : Row.t list) (sign : int) : Zset.t =
  let tbl = Catalog.find_table (Database.catalog db) table in
  let z = Zset.create () in
  List.iter
    (fun row ->
       if sign > 0 then Table.insert tbl row
       else begin
         let found = ref None in
         Table.iter_slots
           (fun slot r -> if !found = None && Row.equal r row then found := Some slot)
           tbl;
         match !found with
         | Some slot -> ignore (Table.delete_slot tbl slot)
         | None -> ()
       end;
       Zset.add z row sign)
    rows;
  z

let run_scenario ~view_sql ~steps ~gen_step () =
  let db = Util.db_with schema_sql in
  let circuit = Circuit.of_sql (Database.catalog db) view_sql in
  let acc = Zset.create () in
  let rng = Random.State.make [| 7 |] in
  for step = 0 to steps - 1 do
    let deltas = gen_step db rng step in
    let inputs =
      List.fold_left
        (fun m (tbl, z) ->
           Circuit.String_map.update tbl
             (function
               | None -> Some z
               | Some existing -> Some (Zset.plus existing z))
             m)
        Circuit.String_map.empty deltas
    in
    Zset.accumulate ~into:acc (circuit.Circuit.step inputs);
    (* reference: run the view query from scratch *)
    let expected = Zset.of_rows (Database.query db view_sql).Database.rows in
    if not (Zset.equal acc expected) then
      Alcotest.failf "step %d: circuit %s <> reference %s" step
        (Zset.to_string acc) (Zset.to_string expected)
  done

let group_row rng : Row.t =
  [| (if Random.State.int rng 10 = 0 then Value.Null
      else Value.Str (Printf.sprintf "g%d" (Random.State.int rng 6)));
     Value.Int (Random.State.int rng 50) |]

let groups_step db rng _step =
  let inserts =
    List.init (1 + Random.State.int rng 5) (fun _ -> group_row rng)
  in
  let tbl = Catalog.find_table (Database.catalog db) "groups" in
  let existing = Table.to_rows tbl in
  let deletes =
    List.filteri (fun i _ -> i mod 7 = Random.State.int rng 7) existing
  in
  [ ("groups", Zset.plus (apply_delta db "groups" inserts 1)
       (apply_delta db "groups" deletes (-1))) ]

let star_step db rng _step =
  let cust_rows =
    List.init (Random.State.int rng 2) (fun _ ->
        [| Value.Int (Random.State.int rng 5);
           Value.Str (Printf.sprintf "r%d" (Random.State.int rng 3)) |])
  in
  let sales_rows =
    List.init (1 + Random.State.int rng 4) (fun _ ->
        [| Value.Int (Random.State.int rng 5);
           Value.Int (Random.State.int rng 100) |])
  in
  let sales_tbl = Catalog.find_table (Database.catalog db) "sales" in
  let deletes =
    List.filteri (fun i _ -> i mod 5 = Random.State.int rng 5)
      (Table.to_rows sales_tbl)
  in
  [ ("customers", apply_delta db "customers" cust_rows 1);
    ("sales",
     Zset.plus (apply_delta db "sales" sales_rows 1)
       (apply_delta db "sales" deletes (-1))) ]

let suite =
  [ Util.tc "projection circuit tracks recompute"
      (run_scenario
         ~view_sql:"SELECT group_index, group_value + 1 AS succ FROM groups"
         ~steps:12 ~gen_step:groups_step);
    Util.tc "filter circuit tracks recompute"
      (run_scenario
         ~view_sql:"SELECT group_index FROM groups WHERE group_value > 20"
         ~steps:12 ~gen_step:groups_step);
    Util.tc "group-aggregate circuit tracks recompute"
      (run_scenario
         ~view_sql:
           "SELECT group_index, SUM(group_value) AS s, COUNT(*) AS n FROM \
            groups GROUP BY group_index"
         ~steps:15 ~gen_step:groups_step);
    Util.tc "min/max circuit tracks recompute under deletions"
      (run_scenario
         ~view_sql:
           "SELECT group_index, MIN(group_value) AS lo, MAX(group_value) AS \
            hi FROM groups GROUP BY group_index"
         ~steps:15 ~gen_step:groups_step);
    Util.tc "filtered aggregate circuit tracks recompute"
      (run_scenario
         ~view_sql:
           "SELECT group_index, COUNT(*) AS n FROM groups WHERE group_value \
            % 2 = 0 GROUP BY group_index"
         ~steps:12 ~gen_step:groups_step);
    Util.tc "join circuit tracks recompute"
      (run_scenario
         ~view_sql:
           "SELECT customers.region, sales.amount FROM sales JOIN customers \
            ON sales.cust = customers.cust"
         ~steps:10 ~gen_step:star_step);
    Util.tc "join-aggregate circuit tracks recompute"
      (run_scenario
         ~view_sql:
           "SELECT customers.region, SUM(sales.amount) AS total, COUNT(*) \
            AS n FROM sales JOIN customers ON sales.cust = customers.cust \
            GROUP BY customers.region"
         ~steps:12 ~gen_step:star_step);
    Util.tc "distinct circuit tracks recompute"
      (run_scenario
         ~view_sql:"SELECT DISTINCT group_index FROM groups"
         ~steps:12 ~gen_step:groups_step);
  ]
