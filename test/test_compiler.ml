open Openivm_engine

let catalog () =
  Database.catalog
    (Util.db_with
       [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
         "CREATE TABLE sales(cust INTEGER, amount INTEGER)";
         "CREATE TABLE customers(cust INTEGER, region VARCHAR)" ])

let compile ?flags sql = Openivm.Compiler.compile ?flags (catalog ()) sql

let groups_view =
  "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
   SUM(group_value) AS total_value FROM groups GROUP BY group_index"

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let check_contains hay needle =
  if not (contains hay needle) then
    Alcotest.failf "expected to find %S in:\n%s" needle hay

let suite =
  [ Util.tc "compile produces all artifact groups" (fun () ->
        let c = compile groups_view in
        Alcotest.(check bool) "has ddl" true (c.Openivm.Compiler.ddl <> []);
        Alcotest.(check bool) "has metadata" true (c.Openivm.Compiler.metadata_dml <> []);
        Alcotest.(check bool) "has fill" true (c.Openivm.Compiler.script.Openivm.Propagate.fill <> []);
        Alcotest.(check bool) "has combine" true (c.Openivm.Compiler.script.Openivm.Propagate.combine <> []);
        Alcotest.(check bool) "has cleanup" true (c.Openivm.Compiler.script.Openivm.Propagate.cleanup <> []);
        Alcotest.(check bool) "has trigger sql" true (c.Openivm.Compiler.trigger_sql <> []));
    Util.tc "delta table names are per view" (fun () ->
        let c = compile groups_view in
        Alcotest.(check string) "delta base" "delta_query_groups__groups"
          (Openivm.Compiler.delta_table c "groups");
        Alcotest.(check string) "delta view" "delta_query_groups"
          (Openivm.Compiler.delta_view c));
    Util.tc "paper flags keep the paper's names" (fun () ->
        let c = compile ~flags:Openivm.Flags.paper groups_view in
        Alcotest.(check string) "delta base" "delta_groups"
          (Openivm.Compiler.delta_table c "groups");
        Alcotest.(check string) "mult col" "_duckdb_ivm_multiplicity"
          (Openivm.Compiler.multiplicity_column c));
    Util.tc "linear strategy chosen for sum/count" (fun () ->
        let c = compile groups_view in
        Alcotest.(check bool) "linear" true
          (c.Openivm.Compiler.script.Openivm.Propagate.kind = Openivm.Propagate.Linear));
    Util.tc "min/max autoroutes to rederive" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW m AS SELECT group_index, \
             MAX(group_value) AS hi FROM groups GROUP BY group_index"
        in
        Alcotest.(check bool) "rederive" true
          (c.Openivm.Compiler.script.Openivm.Propagate.kind = Openivm.Propagate.Rederive);
        check_contains (Openivm.Compiler.propagation_sql c) " IN (SELECT";
        (* rederive recomputes from the base table *)
        check_contains (Openivm.Compiler.propagation_sql c) "FROM groups");
    Util.tc "global aggregate uses the stage table" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW g AS SELECT SUM(group_value) AS s FROM groups"
        in
        Alcotest.(check bool) "global" true
          (c.Openivm.Compiler.script.Openivm.Propagate.kind = Openivm.Propagate.Global_linear);
        check_contains (Openivm.Compiler.propagation_sql c) "__ivm_stage_g");
    Util.tc "full recompute flag produces the baseline script" (fun () ->
        let flags = { Openivm.Flags.default with strategy = Openivm.Flags.Full_recompute } in
        let c = compile ~flags groups_view in
        let sql = Openivm.Compiler.propagation_sql c in
        check_contains sql "DELETE FROM query_groups";
        check_contains sql "FROM groups";
        Alcotest.(check bool) "no fill step" true
          (c.Openivm.Compiler.script.Openivm.Propagate.fill = []));
    Util.tc "join view compiles to three fill inserts" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW rs AS SELECT customers.region, \
             SUM(sales.amount) AS total FROM sales JOIN customers ON \
             sales.cust = customers.cust GROUP BY customers.region"
        in
        Alcotest.(check int) "three-join delta" 3
          (List.length c.Openivm.Compiler.script.Openivm.Propagate.fill);
        (* the third term flips multiplicity *)
        check_contains (Openivm.Compiler.propagation_sql c) "<>");
    Util.tc "flat projection view gets the hidden count" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW flat AS SELECT group_index, \
             group_value FROM groups WHERE group_value > 0"
        in
        let setup = Openivm.Compiler.setup_sql c in
        check_contains setup "__ivm_count";
        check_contains setup "PRIMARY KEY (group_index, group_value)");
    Util.tc "where clause propagates into the fill step" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW f AS SELECT group_index, COUNT(*) AS n \
             FROM groups WHERE group_value > 10 GROUP BY group_index"
        in
        check_contains (Openivm.Compiler.propagation_sql c) "group_value > 10");
    Util.tc "postgres dialect emits ON CONFLICT upsert" (fun () ->
        let flags = { Openivm.Flags.default with dialect = Openivm_sql.Dialect.postgres } in
        let c = compile ~flags groups_view in
        let sql = Openivm.Compiler.propagation_sql c in
        check_contains sql "ON CONFLICT (group_index) DO UPDATE SET";
        check_contains sql "EXCLUDED.";
        Alcotest.(check bool) "no duckdb-only syntax" false
          (contains sql "INSERT OR REPLACE"));
    Util.tc "duckdb dialect emits INSERT OR REPLACE" (fun () ->
        let c = compile groups_view in
        check_contains (Openivm.Compiler.propagation_sql c) "INSERT OR REPLACE INTO query_groups");
    Util.tc "unsupported views raise with a reason" (fun () ->
        match
          compile "CREATE MATERIALIZED VIEW bad AS SELECT DISTINCT group_index FROM groups"
        with
        | exception Openivm.Compiler.Unsupported_view _ -> ()
        | _ -> Alcotest.fail "expected Unsupported_view");
    Util.tc "trigger sql covers every base table" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW rs AS SELECT customers.region, \
             COUNT(*) AS n FROM sales JOIN customers ON sales.cust = \
             customers.cust GROUP BY customers.region"
        in
        Alcotest.(check (list string)) "tables" [ "sales"; "customers" ]
          (List.map fst c.Openivm.Compiler.trigger_sql);
        List.iter
          (fun (_, sql) -> check_contains sql "CREATE TRIGGER")
          c.Openivm.Compiler.trigger_sql);
    Util.tc "every emitted statement reparses" (fun () ->
        let c = compile groups_view in
        let all =
          Openivm.Compiler.setup_sql c ^ Openivm.Compiler.propagation_sql c
        in
        let stmts = Openivm_sql.Parser.parse_script all in
        Alcotest.(check bool) "non-empty" true (List.length stmts > 5));
    Util.tc "avg view carries sum and count state" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW a AS SELECT group_index, \
             AVG(group_value) AS m FROM groups GROUP BY group_index"
        in
        let setup = Openivm.Compiler.setup_sql c in
        check_contains setup "__ivm_sum_m";
        check_contains setup "__ivm_nn_m");
  ]
