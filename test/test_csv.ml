open Openivm_engine

let with_temp f =
  let path = Filename.temp_file "openivm_csv" ".csv" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let suite =
  [ Util.tc "export then import round-trips" (fun () ->
        with_temp (fun path ->
            let db =
              Util.db_with
                [ "CREATE TABLE t(k VARCHAR, v INTEGER, f DOUBLE, b BOOLEAN, d DATE)";
                  "INSERT INTO t VALUES ('plain', 1, 1.5, TRUE, '2024-06-09'), \
                   ('with,comma', 2, NULL, FALSE, NULL), ('with\"quote', NULL, \
                   0.25, NULL, '1999-12-31')" ]
            in
            let exported = Csv.export db ~query:"SELECT * FROM t" ~path in
            Alcotest.(check int) "exported" 3 exported;
            let db2 =
              Util.db_with
                [ "CREATE TABLE t(k VARCHAR, v INTEGER, f DOUBLE, b BOOLEAN, d DATE)" ]
            in
            let imported = Csv.import db2 ~table:"t" ~path in
            Alcotest.(check int) "imported" 3 imported;
            Alcotest.(check (list string)) "contents"
              (Util.sorted_rows db "SELECT * FROM t")
              (Util.sorted_rows db2 "SELECT * FROM t")));
    Util.tc "import with column subset fills nulls" (fun () ->
        with_temp (fun path ->
            write path "v,k\n10,alpha\n20,beta\n";
            let db = Util.db_with [ "CREATE TABLE t(k VARCHAR, v INTEGER, extra INTEGER)" ] in
            let n = Csv.import db ~table:"t" ~path in
            Alcotest.(check int) "rows" 2 n;
            Util.check_rows db "SELECT * FROM t"
              [ "(alpha, 10, NULL)"; "(beta, 20, NULL)" ]));
    Util.tc "quoted fields with embedded separators and newlines" (fun () ->
        with_temp (fun path ->
            write path "k,v\n\"a,b\",1\n\"line1\nline2\",2\n\"he said \"\"hi\"\"\",3\n";
            let db = Util.db_with [ "CREATE TABLE t(k VARCHAR, v INTEGER)" ] in
            let n = Csv.import db ~table:"t" ~path in
            Alcotest.(check int) "rows" 3 n;
            Util.check_scalar db "SELECT k FROM t WHERE v = 1" "a,b";
            Util.check_scalar db "SELECT k FROM t WHERE v = 3" "he said \"hi\"";
            Util.check_scalar db
              "SELECT COUNT(*) FROM t WHERE k LIKE '%line1%line2%'" "1"));
    Util.tc "empty unquoted field is NULL, quoted empty is empty string" (fun () ->
        with_temp (fun path ->
            write path "k,v\n,1\n\"\",2\n";
            let db = Util.db_with [ "CREATE TABLE t(k VARCHAR, v INTEGER)" ] in
            ignore (Csv.import db ~table:"t" ~path);
            Util.check_scalar db "SELECT COUNT(*) FROM t WHERE k IS NULL" "1";
            Util.check_scalar db "SELECT COUNT(*) FROM t WHERE k = ''" "1"));
    Util.tc "bad field raises with a message" (fun () ->
        with_temp (fun path ->
            write path "v\nnot_a_number\n";
            let db = Util.db_with [ "CREATE TABLE t(v INTEGER)" ] in
            match Csv.import db ~table:"t" ~path with
            | exception Error.Sql_error _ -> ()
            | _ -> Alcotest.fail "expected import error"));
    Util.tc "every value payload round-trips bit-exact" (fun () ->
        (* checkpoints are CSV snapshots: a single lossy field silently
           corrupts recovered state, so exercise the awkward payloads —
           NULLs, negative/exponent/non-terminating floats, quoted strings
           with separators and newlines *)
        with_temp (fun path ->
            let db =
              Util.db_with [ "CREATE TABLE t(id INTEGER, f DOUBLE, s VARCHAR)" ]
            in
            let floats =
              [ 0.1; -0.1; 1.0 /. 3.0; 3.141592653589793; 1e300; -2.5e-10;
                1e-7; 0.30000000000000004; -12345.678901234567;
                Float.min_float; 4.9e-324 ]
            in
            let strings =
              [ Value.Null; Value.Str ""; Value.Str "a,b"; Value.Str "x\ny";
                Value.Str "\"quoted\"" ]
            in
            let tbl = Catalog.find_table (Database.catalog db) "t" in
            List.iteri
              (fun i f ->
                 let s = List.nth strings (i mod List.length strings) in
                 Table.insert tbl [| Value.Int i; Value.Float f; s |])
              floats;
            Table.insert tbl [| Value.Int 99; Value.Null; Value.Null |];
            ignore (Csv.export db ~query:"SELECT * FROM t" ~path);
            let db2 =
              Util.db_with [ "CREATE TABLE t(id INTEGER, f DOUBLE, s VARCHAR)" ]
            in
            ignore (Csv.import db2 ~table:"t" ~path);
            (* strings and NULLs: structural equality via rendering *)
            Alcotest.(check (list string)) "rows"
              (Util.sorted_rows db "SELECT id, s FROM t")
              (Util.sorted_rows db2 "SELECT id, s FROM t");
            (* floats: bit equality, not print-then-reparse proximity *)
            let bits db =
              List.filter_map
                (fun (row : Row.t) ->
                   match row.(0) with
                   | Value.Float f -> Some (Int64.bits_of_float f)
                   | _ -> None)
                (Database.query db "SELECT f FROM t ORDER BY id").Database.rows
            in
            Alcotest.(check (list int64)) "float bits" (bits db) (bits db2);
            Alcotest.(check int) "all floats present"
              (List.length floats) (List.length (bits db2))));
    Util.tc "import feeds IVM capture triggers" (fun () ->
        with_temp (fun path ->
            write path "group_index,group_value\na,5\nb,7\na,1\n";
            let db =
              Util.db_with
                [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)" ]
            in
            let v =
              Openivm.Runner.install db
                "CREATE MATERIALIZED VIEW qg AS SELECT group_index, \
                 SUM(group_value) AS s FROM groups GROUP BY group_index"
            in
            ignore (Csv.import db ~table:"groups" ~path);
            let r = Openivm.Runner.contents v ~order_by:"group_index" in
            Alcotest.(check (list string)) "maintained"
              [ "(a, 6)"; "(b, 7)" ]
              (List.map
                 (fun (row : Row.t) -> Row.to_string (Array.sub row 0 2))
                 r.Database.rows)));
  ]
