(** DBSP stream/operator laws: D and I are mutually inverse, and each
    incremental operator agrees with its non-incremental counterpart run
    from scratch at every step. *)

open Openivm_engine
open Openivm_dbsp

let row2 a b : Row.t = [| Value.Int a; Value.Int b |]

let gen_delta =
  QCheck.Gen.(
    map
      (fun cells ->
         Zset.of_list
           (List.map (fun ((a, b), w) -> (row2 a b, w)) cells))
      (list_size (int_bound 15)
         (pair (pair (int_bound 5) (int_bound 20)) (int_range (-2) 2))))

let gen_stream = QCheck.Gen.(list_size (int_bound 8) gen_delta)

let arb_stream =
  QCheck.make
    ~print:(fun s -> String.concat " | " (List.map Zset.to_string s))
    gen_stream

(** Check that a stateful incremental operator [inc] tracks the plain
    operator [full] applied to the integrated input, step by step. *)
let tracks (inc : Operator.unary) (full : Zset.t -> Zset.t) stream =
  let acc_in = Zset.create () in
  let acc_out = Zset.create () in
  List.for_all
    (fun delta ->
       Zset.accumulate ~into:acc_in delta;
       Zset.accumulate ~into:acc_out (inc delta);
       Zset.equal acc_out (full acc_in))
    stream

let key (r : Row.t) : Row.t = [| r.(0) |]

let qcheck =
  let open QCheck in
  [ Test.make ~count:200 ~name:"D(I(s)) = s" arb_stream
      (fun s ->
         let back = Stream.differentiate (Stream.integrate s) in
         List.for_all2 Zset.equal s back);
    Test.make ~count:200 ~name:"I(D(s)) = s" arb_stream
      (fun s ->
         let back = Stream.integrate (Stream.differentiate s) in
         List.for_all2 Zset.equal s back);
    Test.make ~count:200 ~name:"incremental filter tracks filter" arb_stream
      (fun s ->
         let p (r : Row.t) = match r.(1) with Value.Int i -> i mod 2 = 0 | _ -> false in
         tracks (Operator.filter p) (Zset.filter p) s);
    Test.make ~count:200 ~name:"incremental map tracks map" arb_stream
      (fun s ->
         let f (r : Row.t) = [| r.(0) |] in
         tracks (Operator.map f) (Zset.map f) s);
    Test.make ~count:200 ~name:"incremental distinct tracks distinct" arb_stream
      (fun s -> tracks (Operator.distinct ()) Zset.distinct s);
    Test.make ~count:100 ~name:"incremental join tracks join"
      (pair arb_stream arb_stream)
      (fun (ls, rs) ->
         (* pad to equal length *)
         let n = max (List.length ls) (List.length rs) in
         let pad s =
           s @ List.init (n - List.length s) (fun _ -> Zset.create ())
         in
         let ls = pad ls and rs = pad rs in
         let join_full a b =
           Zset.join ~left_key:key ~right_key:key ~output:Row.concat a b
         in
         let inc = Operator.join ~left_key:key ~right_key:key ~output:Row.concat in
         let acc_l = Zset.create () and acc_r = Zset.create () in
         let acc_out = Zset.create () in
         List.for_all2
           (fun dl dr ->
              Zset.accumulate ~into:acc_l dl;
              Zset.accumulate ~into:acc_r dr;
              Zset.accumulate ~into:acc_out (inc dl dr);
              Zset.equal acc_out (join_full acc_l acc_r))
           ls rs);
    Test.make ~count:150 ~name:"incremental SUM/COUNT aggregate tracks recompute"
      arb_stream
      (fun s ->
         (* inputs must stay valid bags (non-negative weights) *)
         let acc_in = Zset.create () in
         let value (r : Row.t) = r.(1) in
         let agg =
           Operator.aggregate ~key_of:key
             ~specs:[ Aggregate.Count_star; Aggregate.Sum value ]
         in
         let acc_out = Zset.create () in
         List.for_all
           (fun delta ->
              (* clip deltas so the integral never goes negative *)
              let clipped = Zset.create () in
              Zset.iter
                (fun row w ->
                   let cur = Zset.weight acc_in row in
                   let w = if cur + w < 0 then -cur else w in
                   Zset.add clipped row w)
                delta;
              Zset.accumulate ~into:acc_in clipped;
              Zset.accumulate ~into:acc_out (agg clipped);
              (* recompute reference *)
              let expected = Zset.create () in
              let groups : (Row.t, int * int) Hashtbl.t = Hashtbl.create 8 in
              Zset.iter
                (fun row w ->
                   let k = key row in
                   let c0, s0 =
                     match Hashtbl.find_opt groups k with
                     | Some x -> x
                     | None -> (0, 0)
                   in
                   let v = match row.(1) with Value.Int i -> i | _ -> 0 in
                   Hashtbl.replace groups k (c0 + w, s0 + (w * v)))
                acc_in;
              Hashtbl.iter
                (fun k (c, s) ->
                   if c > 0 then
                     Zset.add expected
                       (Array.append k [| Value.Int c; Value.Int s |])
                       1)
                groups;
              Zset.equal acc_out expected)
           s);
    Test.make ~count:150 ~name:"incremental MIN/MAX aggregate handles retractions"
      arb_stream
      (fun s ->
         let acc_in = Zset.create () in
         let value (r : Row.t) = r.(1) in
         let agg =
           Operator.aggregate ~key_of:key
             ~specs:[ Aggregate.Min value; Aggregate.Max value ]
         in
         let acc_out = Zset.create () in
         List.for_all
           (fun delta ->
              let clipped = Zset.create () in
              Zset.iter
                (fun row w ->
                   let cur = Zset.weight acc_in row in
                   let w = if cur + w < 0 then -cur else w in
                   Zset.add clipped row w)
                delta;
              Zset.accumulate ~into:acc_in clipped;
              Zset.accumulate ~into:acc_out (agg clipped);
              let expected = Zset.create () in
              let groups : (Row.t, int * int * bool) Hashtbl.t = Hashtbl.create 8 in
              Zset.iter
                (fun row w ->
                   if w > 0 then begin
                     let k = key row in
                     let v = match row.(1) with Value.Int i -> i | _ -> 0 in
                     let lo, hi, seen =
                       match Hashtbl.find_opt groups k with
                       | Some x -> x
                       | None -> (max_int, min_int, false)
                     in
                     ignore seen;
                     Hashtbl.replace groups k (min lo v, max hi v, true)
                   end)
                acc_in;
              Hashtbl.iter
                (fun k (lo, hi, seen) ->
                   if seen then
                     Zset.add expected
                       (Array.append k [| Value.Int lo; Value.Int hi |])
                       1)
                groups;
              Zset.equal acc_out expected)
           s);
  ]

let suite = List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck
