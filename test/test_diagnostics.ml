(** Golden tests for the semantic pass: diagnostic codes, spans, renderers,
    the function registry, and the [Sema] binder / IVM lint. *)

open Openivm_engine
module D = Openivm_sql.Diagnostic
module Parser = Openivm_sql.Parser
module Funcs = Openivm_sql.Funcs

let db () =
  Util.db_with
    [ "CREATE TABLE t(k VARCHAR, v INTEGER)";
      "CREATE TABLE u(k VARCHAR, w INTEGER)" ]

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let bind sql =
  let s, spans = Parser.parse_select_positioned sql in
  Openivm.Sema.bind_select (Database.catalog (db ())) ~spans s

let lint sql =
  let s, spans = Parser.parse_select_positioned sql in
  Openivm.Sema.lint_view (Database.catalog (db ())) ~spans ~view_name:"vw" s

let check_codes msg expected ds =
  Alcotest.(check (list string)) msg expected (codes ds)

let has_code code ds =
  Alcotest.(check bool)
    (Printf.sprintf "reports %s" code)
    true
    (List.mem code (codes ds))

let suite =
  [ Util.tc "registry codes are unique" (fun () ->
        let cs = List.map (fun (c, _, _) -> c) D.registry in
        let sorted = List.sort_uniq String.compare cs in
        Alcotest.(check int) "no duplicate codes" (List.length cs)
          (List.length sorted));
    Util.tc "function registry matches the engine" (fun () ->
        (* every implemented spec must be accepted by Expr.scalar_function
           (anything else would let the constant folder "fold" a call the
           engine cannot evaluate) *)
        List.iter
          (fun (spec : Funcs.spec) ->
             let args = List.init (max spec.Funcs.min_args 1) (fun _ -> Value.Null) in
             match Expr.scalar_function spec.Funcs.name args with
             | _ -> ()
             | exception Error.Sql_error msg ->
               if contains msg "unknown function" then
                 Alcotest.failf "%s is in Funcs.implemented but not in the engine"
                   spec.Funcs.name)
          Funcs.implemented;
        (* and the non-deterministic list must not claim implemented names *)
        List.iter
          (fun name ->
             Alcotest.(check bool)
               (name ^ " not implemented")
               false (Funcs.is_implemented name))
          Funcs.nondeterministic);
    Util.tc "suggest finds close names only" (fun () ->
        Alcotest.(check (option string)) "typo" (Some "region")
          (D.suggest "regoin" [ "amount"; "region"; "day" ]);
        Alcotest.(check (option string)) "far off" None
          (D.suggest "zzzzzz" [ "amount"; "region" ]));
    Util.tc "sort: position, spanless last, severity" (fun () ->
        let s a b = D.span ~start_pos:a ~stop_pos:b in
        let d1 = D.make ~code:"B" ~severity:D.Error ~span:(s 10 12) "x" in
        let d2 = D.make ~code:"A" ~severity:D.Error ~span:(s 2 4) "y" in
        let d3 = D.make ~code:"C" ~severity:D.Warning "z" in
        check_codes "order" [ "A"; "B"; "C" ] (D.sort [ d1; d3; d2 ]));
    Util.tc "render: caret spans the offending token" (fun () ->
        let src = "SELECT nope FROM t" in
        let d =
          D.unknown_column ~span:(D.span ~start_pos:7 ~stop_pos:11) "nope"
        in
        let rendered = D.render ~file:"q.sql" ~src d in
        Alcotest.(check string) "golden"
          ("q.sql:1:8: error[SEM002]: unknown column \"nope\"\n"
           ^ "   1 | SELECT nope FROM t\n"
           ^ "     |        ^^^^")
          rendered);
    Util.tc "render: line/col on the second line" (fun () ->
        let src = "SELECT k\nFROM nosuch" in
        let d =
          D.unknown_table ~span:(D.span ~start_pos:14 ~stop_pos:20) "nosuch"
        in
        let line, col = D.line_col src 14 in
        Alcotest.(check (pair int int)) "line/col" (2, 6) (line, col);
        let first = List.hd (String.split_on_char '\n' (D.render ~src d)) in
        Alcotest.(check string) "header"
          "<input>:2:6: error[SEM001]: unknown table \"nosuch\"" first);
    Util.tc "json: fields and counts" (fun () ->
        let src = "SELECT nope FROM t" in
        let d =
          D.unknown_column ~span:(D.span ~start_pos:7 ~stop_pos:11) "nope"
        in
        Alcotest.(check string) "object golden"
          "{\"code\":\"SEM002\",\"severity\":\"error\",\"message\":\"unknown \
           column \\\"nope\\\"\",\"start\":7,\"stop\":11,\"line\":1,\"col\":8,\
           \"end_line\":1,\"end_col\":12}"
          (D.to_json ~src d);
        let all = D.list_to_json ~file:"q.sql" ~src [ d ] in
        Alcotest.(check bool) "envelope" true
          (contains all "\"errors\":1" && contains all "\"file\":\"q.sql\""));
    (* --- binder --- *)
    Util.tc "binder: unknown table with suggestion" (fun () ->
        let ds = bind "SELECT k FROM tt" in
        check_codes "codes" [ "SEM001" ] ds;
        Alcotest.(check (option string)) "hint" (Some "did you mean \"t\"?")
          (List.hd ds).D.hint);
    Util.tc "binder: one broken FROM does not cascade" (fun () ->
        check_codes "codes" [ "SEM001" ]
          (bind "SELECT a, b, c FROM nosuch WHERE d > 1"));
    Util.tc "binder: unknown column with suggestion" (fun () ->
        let ds = bind "SELECT vv FROM t" in
        check_codes "codes" [ "SEM002" ] ds;
        Alcotest.(check (option string)) "hint" (Some "did you mean \"v\"?")
          (List.hd ds).D.hint);
    Util.tc "binder: ambiguous unqualified column" (fun () ->
        has_code "SEM003" (bind "SELECT k FROM t JOIN u ON t.k = u.k"));
    Util.tc "binder: ORDER BY resolves output columns first" (fun () ->
        (* a projected base column referenced unqualified must not be
           ambiguous against its own output alias *)
        check_codes "projected column" [] (bind "SELECT k FROM t ORDER BY k");
        check_codes "alias" [] (bind "SELECT v AS x FROM t ORDER BY x");
        check_codes "alias shadows base" []
          (bind "SELECT v AS k FROM t ORDER BY k");
        check_codes "unprojected base column" []
          (bind "SELECT k FROM t ORDER BY v");
        check_codes "qualified base column" []
          (bind "SELECT k FROM t ORDER BY t.v");
        check_codes "unknown order column" [ "SEM002" ]
          (bind "SELECT k FROM t ORDER BY zz"));
    Util.tc "binder: ORDER BY on duplicate alias has no empty hint" (fun () ->
        let ds = bind "SELECT k AS x, v AS x FROM t ORDER BY x" in
        has_code "SEM003" ds;
        has_code "SEM011" ds;
        let amb = List.find (fun (d : D.t) -> d.D.code = "SEM003") ds in
        Alcotest.(check (option string)) "no dangling hint" None amb.D.hint);
    Util.tc "binder: unknown qualifier" (fun () ->
        check_codes "codes" [ "SEM004" ] (bind "SELECT x.k FROM t"));
    Util.tc "binder: unknown function and arity" (fun () ->
        check_codes "unknown" [ "SEM005" ] (bind "SELECT lenght(k) FROM t");
        check_codes "arity" [ "SEM006" ] (bind "SELECT abs(v, v) FROM t"));
    Util.tc "binder: nested aggregate" (fun () ->
        has_code "SEM007" (bind "SELECT SUM(COUNT(*)) AS x FROM t"));
    Util.tc "binder: aggregate in WHERE" (fun () ->
        has_code "SEM008" (bind "SELECT k FROM t WHERE SUM(v) > 1"));
    Util.tc "binder: SUM over VARCHAR" (fun () ->
        check_codes "codes" [ "SEM009" ] (bind "SELECT SUM(k) AS s FROM t"));
    Util.tc "binder: arithmetic on text" (fun () ->
        has_code "SEM010" (bind "SELECT k + 1 AS x FROM t"));
    Util.tc "binder: duplicate output columns" (fun () ->
        check_codes "codes" [ "SEM011" ] (bind "SELECT k, v AS k FROM t"));
    Util.tc "binder: non-deterministic function" (fun () ->
        check_codes "codes" [ "SEM012" ] (bind "SELECT random() AS r FROM t"));
    Util.tc "binder: non-boolean WHERE is a warning" (fun () ->
        let ds = bind "SELECT k FROM t WHERE v" in
        check_codes "codes" [ "SEM013" ] ds;
        Alcotest.(check bool) "warning, not error" false (D.has_errors ds));
    Util.tc "binder: subquery and CTE scopes" (fun () ->
        check_codes "derived ok" []
          (bind "SELECT q.k FROM (SELECT k FROM t) AS q");
        check_codes "cte ok" []
          (bind "WITH c AS (SELECT k FROM t) SELECT k FROM c");
        check_codes "cte inner error" [ "SEM002" ]
          (bind "WITH c AS (SELECT zz FROM t) SELECT zz FROM c"));
    Util.tc "binder: three independent problems in one run" (fun () ->
        (* sorted by source position: SUM(k), then frobnicate, then zz *)
        check_codes "all three"
          [ "SEM009"; "SEM005"; "SEM002" ]
          (bind "SELECT SUM(k) AS a, frobnicate(v) AS b, zz AS c FROM t"));
    (* --- IVM lint --- *)
    Util.tc "lint: every rejection has its code" (fun () ->
        List.iter
          (fun (sql, code) -> has_code code (lint sql))
          [ ("WITH c AS (SELECT k FROM t) SELECT k FROM c", "IVM001");
            ("SELECT k FROM t UNION SELECT k FROM u", "IVM002");
            ("SELECT DISTINCT k FROM t", "IVM003");
            ("SELECT k FROM t LIMIT 3", "IVM004");
            ("SELECT 1 AS one", "IVM005");
            ("SELECT q.k FROM (SELECT k FROM t) AS q", "IVM006");
            ( "SELECT a.k FROM t a JOIN u b ON a.k = b.k JOIN t c ON b.k = \
               c.k JOIN u d ON c.k = d.k JOIN t e ON d.k = e.k",
              "IVM007" );
            ("SELECT t.k FROM t LEFT JOIN u ON t.k = u.k", "IVM008");
            ("SELECT k FROM t ORDER BY k", "IVM009");
            ( "SELECT k, SUM(v) AS s FROM t GROUP BY k HAVING SUM(v) > 0",
              "IVM010" );
            ("SELECT *, COUNT(*) AS n FROM t", "IVM011");
            ("SELECT k, COUNT(DISTINCT v) AS n FROM t GROUP BY k", "IVM012");
            ("SELECT k, SUM(v) + 1 AS s FROM t GROUP BY k", "IVM013");
            ("SELECT SUM(v) AS s FROM t GROUP BY k", "IVM014") ]);
    Util.tc "lint: rejection spans point into the source" (fun () ->
        let sql = "SELECT k FROM t ORDER BY k" in
        let s, spans = Parser.parse_select_positioned sql in
        let ds =
          Openivm.Sema.lint_view (Database.catalog (db ())) ~spans
            ~view_name:"vw" s
        in
        let d = List.find (fun (d : D.t) -> d.D.code = "IVM009") ds in
        match d.D.span with
        | Some sp ->
          Alcotest.(check string) "span text" "k"
            (String.sub sql sp.D.start_pos (sp.D.stop_pos - sp.D.start_pos))
        | None -> Alcotest.fail "IVM009 lost its span");
    Util.tc "lint: MIN/MAX and AVG advisories" (fun () ->
        let ds = lint "SELECT k, MIN(v) AS lo, AVG(v) AS m FROM t GROUP BY k" in
        has_code "IVM101" ds;
        has_code "IVM102" ds;
        Alcotest.(check bool) "no errors" false (D.has_errors ds));
    Util.tc "lint: unindexed key warns, indexed does not" (fun () ->
        let unindexed = lint "SELECT k, COUNT(*) AS n FROM t GROUP BY k" in
        has_code "IVM103" unindexed;
        let db =
          Util.db_with
            [ "CREATE TABLE t(k VARCHAR PRIMARY KEY, v INTEGER)" ]
        in
        let s, spans =
          Parser.parse_select_positioned
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k"
        in
        let ds =
          Openivm.Sema.lint_view (Database.catalog db) ~spans ~view_name:"vw" s
        in
        Alcotest.(check (list string)) "clean" [] (codes ds));
    (* --- scripts --- *)
    Util.tc "check_script: parse error becomes SEM000" (fun () ->
        let ds =
          Openivm.Sema.check_script (Database.create ()) "SELECT FROM WHERE"
        in
        check_codes "codes" [ "SEM000" ] ds);
    Util.tc "check_script: accumulates across statements" (fun () ->
        let src =
          "CREATE TABLE s(r VARCHAR PRIMARY KEY, a INTEGER);\n\
           CREATE MATERIALIZED VIEW v AS SELECT r, SUM(b) AS s FROM s GROUP \
           BY r;\n\
           SELECT nope FROM s;"
        in
        let ds = Openivm.Sema.check_script (Database.create ()) src in
        Alcotest.(check (list string)) "codes" [ "SEM002"; "SEM002" ]
          (codes ds);
        (* spans are script-global: the second SEM002 sits on line 3 *)
        match (List.nth ds 1).D.span with
        | Some sp ->
          Alcotest.(check int) "line" 3 (fst (D.line_col src sp.D.start_pos))
        | None -> Alcotest.fail "script diagnostic lost its span");
    Util.tc "check_script: view typo gets a suggestion" (fun () ->
        let src =
          "CREATE TABLE base(k VARCHAR);\n\
           CREATE VIEW myview AS SELECT k FROM base;\n\
           SELECT k FROM myvew;"
        in
        let ds = Openivm.Sema.check_script (Database.create ()) src in
        check_codes "codes" [ "SEM001" ] ds;
        Alcotest.(check (option string)) "hint" (Some "did you mean \"myview\"?")
          (List.hd ds).D.hint);
    Util.tc "check_script: later statements see checked views" (fun () ->
        let src =
          "CREATE TABLE t(k VARCHAR PRIMARY KEY, v INTEGER);\n\
           CREATE MATERIALIZED VIEW m AS SELECT k, SUM(v) AS s FROM t GROUP \
           BY k;\n\
           SELECT s FROM m;\n\
           SELECT zz FROM m;"
        in
        let ds = Openivm.Sema.check_script (Database.create ()) src in
        check_codes "only the bad column" [ "SEM002" ] ds);
  ]
