open Openivm_engine

let suite =
  [ Util.tc "insert values and count" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER, b VARCHAR)" ] in
        (match Database.exec db "INSERT INTO t VALUES (1,'x'), (2,'y')" with
         | Database.Affected 2 -> ()
         | _ -> Alcotest.fail "affected");
        Util.check_scalar db "SELECT COUNT(*) FROM t" "2");
    Util.tc "insert with column list fills nulls" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER, b VARCHAR, c INTEGER)" ] in
        Util.exec db "INSERT INTO t (c, a) VALUES (3, 1)";
        Util.check_rows db "SELECT * FROM t" [ "(1, NULL, 3)" ]);
    Util.tc "insert coerces types" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a DOUBLE, d DATE)" ] in
        Util.exec db "INSERT INTO t VALUES (1, '2024-02-29')";
        Util.check_rows db "SELECT * FROM t" [ "(1.0, 2024-02-29)" ]);
    Util.tc "not null enforced" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER NOT NULL)" ] in
        match Database.exec db "INSERT INTO t VALUES (NULL)" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected NOT NULL violation");
    Util.tc "primary key uniqueness enforced" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)" ] in
        Util.exec db "INSERT INTO t VALUES (1, 10)";
        match Database.exec db "INSERT INTO t VALUES (1, 20)" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected duplicate key error");
    Util.tc "insert or replace upserts" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)" ] in
        Util.exec db "INSERT INTO t VALUES (1, 10), (2, 20)";
        Util.exec db "INSERT OR REPLACE INTO t VALUES (1, 99), (3, 30)";
        Util.check_rows db "SELECT * FROM t" [ "(1, 99)"; "(2, 20)"; "(3, 30)" ]);
    Util.tc "insert or replace without pk fails" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER)" ] in
        match Database.exec db "INSERT OR REPLACE INTO t VALUES (1)" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Util.tc "on conflict do nothing" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)" ] in
        Util.exec db "INSERT INTO t VALUES (1, 10)";
        (match Database.exec db "INSERT INTO t VALUES (1, 99), (2, 20) ON CONFLICT DO NOTHING" with
         | Database.Affected 1 -> ()
         | _ -> Alcotest.fail "affected should be 1");
        Util.check_rows db "SELECT * FROM t" [ "(1, 10)"; "(2, 20)" ]);
    Util.tc "composite primary key" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE t(a INTEGER, b VARCHAR, v INTEGER, PRIMARY KEY (a, b))" ]
        in
        Util.exec db "INSERT INTO t VALUES (1, 'x', 5), (1, 'y', 6)";
        Util.exec db "INSERT OR REPLACE INTO t VALUES (1, 'x', 50)";
        Util.check_rows db "SELECT v FROM t" [ "(50)"; "(6)" ]);
    Util.tc "update with expression" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER, b INTEGER)" ] in
        Util.exec db "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)";
        (match Database.exec db "UPDATE t SET b = b + a WHERE a >= 2" with
         | Database.Affected 2 -> ()
         | _ -> Alcotest.fail "affected");
        Util.check_rows db "SELECT b FROM t" [ "(10)"; "(22)"; "(33)" ]);
    Util.tc "delete with predicate" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER)" ] in
        Util.exec db "INSERT INTO t VALUES (1), (2), (3), (4)";
        (match Database.exec db "DELETE FROM t WHERE a % 2 = 0" with
         | Database.Affected 2 -> ()
         | _ -> Alcotest.fail "affected");
        Util.check_rows db "SELECT a FROM t" [ "(1)"; "(3)" ]);
    Util.tc "truncate" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER)" ] in
        Util.exec db "INSERT INTO t VALUES (1), (2)";
        Util.exec db "TRUNCATE t";
        Util.check_scalar db "SELECT COUNT(*) FROM t" "0");
    Util.tc "insert from select" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE src(a INTEGER)"; "INSERT INTO src VALUES (1), (2)";
              "CREATE TABLE dst(a INTEGER, doubled INTEGER)" ]
        in
        Util.exec db "INSERT INTO dst SELECT a, a * 2 FROM src";
        Util.check_rows db "SELECT * FROM dst" [ "(1, 2)"; "(2, 4)" ]);
    Util.tc "triggers fire with old and new images" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER)" ] in
        let events = ref [] in
        Trigger.register (Database.triggers db) ~table:"t" ~name:"test"
          (fun change ->
             events :=
               (List.length change.Trigger.inserted,
                List.length change.Trigger.deleted)
               :: !events);
        Util.exec db "INSERT INTO t VALUES (1), (2)";
        Util.exec db "UPDATE t SET a = a + 1";
        Util.exec db "DELETE FROM t WHERE a = 3";
        Alcotest.(check (list (pair int int))) "events"
          [ (0, 1); (2, 2); (2, 0) ]
          !events);
    Util.tc "without_hooks suppresses triggers" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER)" ] in
        let fired = ref 0 in
        Trigger.register (Database.triggers db) ~table:"t" ~name:"test"
          (fun _ -> incr fired);
        Trigger.without_hooks (Database.triggers db) (fun () ->
            Util.exec db "INSERT INTO t VALUES (1)");
        Util.exec db "INSERT INTO t VALUES (2)";
        Alcotest.(check int) "fired once" 1 !fired);
    Util.tc "secondary index stays consistent through dml" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER, b VARCHAR)" ] in
        Util.exec db "CREATE INDEX idx_b ON t(b)";
        Util.exec db "INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'x')";
        Util.exec db "DELETE FROM t WHERE a = 1";
        Util.exec db "UPDATE t SET b = 'z' WHERE a = 2";
        let tbl = Catalog.find_table (Database.catalog db) "t" in
        let ix =
          match Table.find_secondary tbl "idx_b" with
          | Some ix -> ix
          | None -> Alcotest.fail "index missing"
        in
        let lookup key =
          List.length (Table.index_lookup tbl ix (Value.encode_key [| Value.Str key |]))
        in
        Alcotest.(check int) "x entries" 1 (lookup "x");
        Alcotest.(check int) "y entries" 0 (lookup "y");
        Alcotest.(check int) "z entries" 1 (lookup "z"));
    Util.tc "table compaction preserves contents" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER PRIMARY KEY)" ] in
        for i = 1 to 200 do
          Util.exec db (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
        done;
        Util.exec db "DELETE FROM t WHERE a % 4 <> 0";
        Util.check_scalar db "SELECT COUNT(*) FROM t" "50";
        Util.check_scalar db "SELECT MIN(a) FROM t" "4";
        (* upsert after compaction still routes through the PK index *)
        Util.exec db "INSERT OR REPLACE INTO t VALUES (4)";
        Util.check_scalar db "SELECT COUNT(*) FROM t" "50");
    Util.tc "drop table removes catalog entry" (fun () ->
        let db = Util.db_with [ "CREATE TABLE t(a INTEGER)" ] in
        Util.exec db "DROP TABLE t";
        match Database.query db "SELECT * FROM t" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "table should be gone");
    (* regression: catalog name listings must be sorted, not hashtable
       iteration order — SHOW TABLES output and the fuzz oracle's view
       install order both depend on it being deterministic *)
    Util.tc "catalog name listings are sorted" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE zeta(a INTEGER)";
              "CREATE TABLE alpha(a INTEGER)";
              "CREATE TABLE mid(a INTEGER)";
              "CREATE VIEW v_z AS SELECT a FROM zeta";
              "CREATE VIEW v_a AS SELECT a FROM alpha" ]
        in
        let cat = Database.catalog db in
        Alcotest.(check (list string)) "tables sorted"
          [ "alpha"; "mid"; "zeta" ] (Catalog.table_names cat);
        Alcotest.(check (list string)) "views sorted"
          [ "v_a"; "v_z" ] (Catalog.view_names cat);
        let sorted l = List.sort String.compare l in
        let mvs = Catalog.mat_view_names cat in
        Alcotest.(check (list string)) "mat views sorted" (sorted mvs) mvs);
  ]
