open Openivm_engine

let base_db () =
  Util.db_with
    [ "CREATE TABLE t(k VARCHAR, v INTEGER, f DOUBLE)";
      "INSERT INTO t VALUES ('a', 1, 1.5), ('a', 2, 2.5), ('b', 3, NULL), \
       (NULL, 4, 0.5), ('c', NULL, 3.5)";
      "CREATE TABLE u(k VARCHAR, w INTEGER)";
      "INSERT INTO u VALUES ('a', 10), ('b', 20), ('d', 40), ('a', 11)" ]

let suite =
  [ Util.tc "projection with expressions" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT v + 1 AS succ FROM t WHERE v IS NOT NULL"
          [ "(2)"; "(3)"; "(4)"; "(5)" ]);
    Util.tc "where with 3vl null" (fun () ->
        let db = base_db () in
        (* v > 2 is NULL for the NULL row -> excluded *)
        Util.check_rows db "SELECT k FROM t WHERE v > 2" [ "(b)"; "(NULL)" ]);
    Util.tc "select star" (fun () ->
        let db = base_db () in
        Alcotest.(check int) "arity"
          3
          (List.length (Database.query db "SELECT * FROM t").Database.schema));
    Util.tc "qualified star over join" (fun () ->
        let db = base_db () in
        let r = Database.query db "SELECT u.* FROM t JOIN u ON t.k = u.k" in
        Alcotest.(check int) "arity" 2 (List.length r.Database.schema));
    Util.tc "order by asc puts nulls first" (fun () ->
        let db = base_db () in
        let r = Database.query db "SELECT v FROM t ORDER BY v" in
        Alcotest.(check (list string)) "order"
          [ "(NULL)"; "(1)"; "(2)"; "(3)"; "(4)" ]
          (Util.rows_of r));
    Util.tc "order by desc with limit offset" (fun () ->
        let db = base_db () in
        let r = Database.query db "SELECT v FROM t WHERE v IS NOT NULL ORDER BY v DESC LIMIT 2 OFFSET 1" in
        Alcotest.(check (list string)) "order" [ "(3)"; "(2)" ] (Util.rows_of r));
    Util.tc "order by unprojected column" (fun () ->
        let db = base_db () in
        let r = Database.query db "SELECT k FROM t WHERE v IS NOT NULL ORDER BY t.v DESC" in
        Alcotest.(check (list string)) "order"
          [ "(NULL)"; "(b)"; "(a)"; "(a)" ]
          (Util.rows_of r));
    Util.tc "distinct" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT DISTINCT k FROM t"
          [ "(a)"; "(b)"; "(c)"; "(NULL)" ]);
    Util.tc "group by with sum/count/avg" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT k, SUM(v), COUNT(v), COUNT(*) FROM t GROUP BY k"
          [ "(a, 3, 2, 2)"; "(b, 3, 1, 1)"; "(NULL, 4, 1, 1)"; "(c, NULL, 0, 1)" ]);
    Util.tc "group by nulls form one group" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT k, COUNT(*) FROM t GROUP BY k HAVING k IS NULL"
          [ "(NULL, 1)" ]);
    Util.tc "sum over empty group set" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT k, SUM(v) FROM t WHERE v > 100 GROUP BY k" []);
    Util.tc "global aggregate over empty input yields one row" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT COUNT(*), SUM(v) FROM t WHERE v > 100"
          [ "(0, NULL)" ]);
    Util.tc "min/max" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT MIN(v), MAX(v), MIN(k), MAX(k) FROM t"
          [ "(1, 4, a, c)" ]);
    Util.tc "avg" (fun () ->
        let db = base_db () in
        Util.check_scalar db "SELECT AVG(v) FROM t" "2.5");
    Util.tc "count distinct" (fun () ->
        let db = base_db () in
        Util.check_scalar db "SELECT COUNT(DISTINCT k) FROM t" "3");
    Util.tc "sum distinct" (fun () ->
        let db = base_db () in
        (* w values 10, 20, 40, 11; w % 10 gives 0, 0, 0, 1 *)
        Util.check_scalar db "SELECT SUM(DISTINCT w % 10) FROM u" "1");
    Util.tc "having filters groups" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT k FROM t GROUP BY k HAVING COUNT(*) > 1"
          [ "(a)" ]);
    Util.tc "expression over aggregate" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT k, SUM(v) * 2 + COUNT(*) AS x FROM t WHERE k = 'a' GROUP BY k"
          [ "(a, 8)" ]);
    Util.tc "group by expression" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT v % 2 AS parity, COUNT(*) FROM t WHERE v IS NOT NULL GROUP \
           BY v % 2"
          [ "(0, 2)"; "(1, 2)" ]);
    Util.tc "inner join" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT t.k, t.v, u.w FROM t JOIN u ON t.k = u.k WHERE t.v = 1"
          [ "(a, 1, 10)"; "(a, 1, 11)" ]);
    Util.tc "left join keeps unmatched" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT t.k, u.w FROM t LEFT JOIN u ON t.k = u.k WHERE t.v = 3 OR \
           t.v = 4"
          [ "(b, 20)"; "(NULL, NULL)" ]);
    Util.tc "right join keeps unmatched right" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT u.k, t.v FROM t RIGHT JOIN u ON t.k = u.k AND t.v = 1"
          [ "(a, 1)"; "(a, 1)"; "(b, NULL)"; "(d, NULL)" ]);
    Util.tc "full join" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE l(x INTEGER)"; "INSERT INTO l VALUES (1), (2)";
              "CREATE TABLE r(x INTEGER)"; "INSERT INTO r VALUES (2), (3)" ]
        in
        Util.check_rows db "SELECT l.x, r.x FROM l FULL JOIN r ON l.x = r.x"
          [ "(1, NULL)"; "(2, 2)"; "(NULL, 3)" ]);
    Util.tc "null keys never join" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE l(x INTEGER)"; "INSERT INTO l VALUES (NULL), (1)";
              "CREATE TABLE r(x INTEGER)"; "INSERT INTO r VALUES (NULL), (1)" ]
        in
        Util.check_rows db "SELECT l.x FROM l JOIN r ON l.x = r.x" [ "(1)" ]);
    Util.tc "cross join" (fun () ->
        let db = base_db () in
        Util.check_scalar db "SELECT COUNT(*) FROM t CROSS JOIN u" "20");
    Util.tc "comma join with where becomes equi-join" (fun () ->
        let db = base_db () in
        Util.check_scalar db
          "SELECT COUNT(*) FROM t, u WHERE t.k = u.k" "5");
    Util.tc "theta join (non-equi)" (fun () ->
        let db = base_db () in
        Util.check_scalar db
          "SELECT COUNT(*) FROM t JOIN u ON t.v < u.w AND t.k = u.k" "5");
    Util.tc "self join with aliases" (fun () ->
        let db = base_db () in
        Util.check_scalar db
          "SELECT COUNT(*) FROM u AS a JOIN u AS b ON a.k = b.k AND a.w < b.w"
          "1");
    Util.tc "subquery in from" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT s.k, s.total FROM (SELECT k, SUM(v) AS total FROM t GROUP \
           BY k) AS s WHERE s.total > 3"
          [ "(NULL, 4)" ]);
    Util.tc "cte" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "WITH totals AS (SELECT k, SUM(v) AS s FROM t GROUP BY k) SELECT \
           u.k, totals.s + u.w AS x FROM totals JOIN u ON u.k = totals.k \
           WHERE u.w <= 20"
          [ "(a, 13)"; "(a, 14)"; "(b, 23)" ]);
    Util.tc "cte referenced by later cte" (fun () ->
        let db = base_db () in
        Util.check_scalar db
          "WITH a AS (SELECT v FROM t WHERE v IS NOT NULL), b AS (SELECT v + \
           1 AS v1 FROM a) SELECT SUM(v1) FROM b"
          "14");
    Util.tc "union removes duplicates" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT k FROM t UNION SELECT k FROM u"
          [ "(a)"; "(b)"; "(c)"; "(d)"; "(NULL)" ]);
    Util.tc "union all keeps duplicates" (fun () ->
        let db = base_db () in
        Util.check_scalar db
          "SELECT COUNT(*) FROM (SELECT k FROM t UNION ALL SELECT k FROM u) \
           AS q"
          "9");
    Util.tc "except" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT k FROM t EXCEPT SELECT k FROM u"
          [ "(c)"; "(NULL)" ]);
    Util.tc "intersect" (fun () ->
        let db = base_db () in
        Util.check_rows db "SELECT k FROM t INTERSECT SELECT k FROM u"
          [ "(a)"; "(b)" ]);
    Util.tc "in-subquery in where" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT k, v FROM t WHERE k IN (SELECT k FROM u WHERE w > 15)"
          [ "(b, 3)" ]);
    Util.tc "not-in-subquery" (fun () ->
        let db = base_db () in
        Util.check_rows db
          "SELECT k FROM t WHERE k NOT IN (SELECT k FROM u WHERE w > 5)"
          [ "(c)" ]);
    Util.tc "select without from" (fun () ->
        let db = Database.create () in
        Util.check_rows db "SELECT 1 + 2 AS x, 'hi' AS s" [ "(3, hi)" ]);
    Util.tc "view expansion" (fun () ->
        let db = base_db () in
        Util.exec db "CREATE VIEW big AS SELECT k, v FROM t WHERE v >= 2";
        Util.check_rows db "SELECT k FROM big" [ "(a)"; "(b)"; "(NULL)" ]);
    Util.tc "explain renders a plan" (fun () ->
        let db = base_db () in
        match Database.exec db "EXPLAIN SELECT k, SUM(v) FROM t WHERE v > 1 GROUP BY k" with
        | Database.Ok_msg plan ->
          Alcotest.(check bool) "mentions group by" true
            (String.length plan > 0
             && (let re = "HASH_GROUP_BY" in
                 let rec contains i =
                   i + String.length re <= String.length plan
                   && (String.sub plan i (String.length re) = re || contains (i + 1))
                 in
                 contains 0))
        | _ -> Alcotest.fail "expected plan text");
    Util.tc "ambiguous column is rejected" (fun () ->
        let db = base_db () in
        match Database.query db "SELECT k FROM t JOIN u ON t.k = u.k" with
        | exception Error.Sql_error msg ->
          Alcotest.(check bool) "mentions ambiguity" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "expected ambiguity error");
    Util.tc "unknown column is rejected" (fun () ->
        let db = base_db () in
        match Database.query db "SELECT nope FROM t" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Util.tc "unknown table is rejected" (fun () ->
        let db = base_db () in
        match Database.query db "SELECT 1 FROM missing" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected error");
    (* --- join row multiplicity and build/probe swap bookkeeping ---
       The hash join builds on the smaller input, so the same query text
       exercises both (build=left, build=right) layouts depending on row
       counts; duplicate keys and duplicate whole rows must multiply out
       identically either way, and LEFT/FULL unmatched tracking must
       survive the swap. No table here has an index, which pins the plan
       to the hash path. *)
    Util.tc "hash join: duplicate build keys multiply matches" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE lt(k VARCHAR, x INTEGER)";
              "INSERT INTO lt VALUES ('a', 1), ('a', 1), ('z', 9)";
              "CREATE TABLE rt(k VARCHAR, y INTEGER)";
              "INSERT INTO rt VALUES ('a', 10), ('a', 11), ('b', 20), \
               ('b', 21), ('c', 30)" ]
        in
        (* lt (3 rows) < rt (5 rows): build side = lt, with the duplicate
           whole row ('a', 1) twice — every copy must pair with every
           matching probe row *)
        Util.check_rows db
          "SELECT lt.x AS x, rt.y AS y FROM lt JOIN rt ON lt.k = rt.k"
          [ "(1, 10)"; "(1, 10)"; "(1, 11)"; "(1, 11)" ]);
    Util.tc "hash join: left outer with build on the left side" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE lt(k VARCHAR, x INTEGER)";
              "INSERT INTO lt VALUES ('a', 1), ('a', 1), ('z', 9)";
              "CREATE TABLE rt(k VARCHAR, y INTEGER)";
              "INSERT INTO rt VALUES ('a', 10), ('a', 11), ('b', 20), \
               ('b', 21), ('c', 30)" ]
        in
        (* the LEFT side is the build side here; its unmatched rows come
           out of the matched_build bookkeeping *)
        Util.check_rows db
          "SELECT lt.x AS x, rt.y AS y FROM lt LEFT JOIN rt ON lt.k = rt.k"
          [ "(1, 10)"; "(1, 10)"; "(1, 11)"; "(1, 11)"; "(9, NULL)" ]);
    Util.tc "hash join: left outer with build on the right side" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE lt(k VARCHAR, x INTEGER)";
              "INSERT INTO lt VALUES ('a', 1), ('a', 1), ('z', 9)";
              "CREATE TABLE rt(k VARCHAR, y INTEGER)";
              "INSERT INTO rt VALUES ('a', 10), ('a', 11), ('b', 20), \
               ('b', 21), ('c', 30)" ]
        in
        (* same data, mirrored: now the LEFT side (rt, 5 rows) is the
           probe side and its unmatched rows come from matched_probe *)
        Util.check_rows db
          "SELECT rt.y AS y, lt.x AS x FROM rt LEFT JOIN lt ON rt.k = lt.k"
          [ "(10, 1)"; "(10, 1)"; "(11, 1)"; "(11, 1)"; "(20, NULL)";
            "(21, NULL)"; "(30, NULL)" ]);
    Util.tc "hash join: full outer with null keys and duplicates" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE lt(k VARCHAR, x INTEGER)";
              "INSERT INTO lt VALUES ('a', 1), ('a', 1), ('z', 9), (NULL, 7)";
              "CREATE TABLE rt(k VARCHAR, y INTEGER)";
              "INSERT INTO rt VALUES ('a', 10), ('a', 11), ('b', 20), \
               ('b', 21), ('c', 30)" ]
        in
        (* NULL join keys match nothing but must still surface padded on
           their own side; both duplicate pairs and all unmatched rows of
           both sides survive *)
        Util.check_rows db
          "SELECT lt.x AS x, rt.y AS y FROM lt FULL JOIN rt ON lt.k = rt.k"
          [ "(1, 10)"; "(1, 10)"; "(1, 11)"; "(1, 11)"; "(9, NULL)";
            "(7, NULL)"; "(NULL, 20)"; "(NULL, 21)"; "(NULL, 30)" ]);
    (* --- index nested loop fast path ---
       A bare scan of an indexed table on the non-probe side, with few
       enough probe rows (probe*2 < indexed rows), takes the INLJ path
       instead of hashing — results must be indistinguishable from it. *)
    Util.tc "inlj: primary-key probe with duplicate probe rows" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE big(k VARCHAR PRIMARY KEY, y INTEGER)";
              "CREATE TABLE probe(k VARCHAR, x INTEGER)";
              "INSERT INTO probe VALUES ('k1', 1), ('k1', 1), ('k3', 2), \
               ('zz', 3)" ]
        in
        for i = 0 to 9 do
          Util.exec db
            (Printf.sprintf "INSERT INTO big VALUES ('k%d', %d)" i (100 + i))
        done;
        (* 4 probe rows * 2 < 10 indexed rows: the PK lookup path runs;
           the duplicate probe row must keep its multiplicity *)
        Util.check_rows db
          "SELECT probe.x AS x, big.y AS y FROM probe JOIN big ON probe.k = big.k"
          [ "(1, 101)"; "(1, 101)"; "(2, 103)" ];
        Util.check_rows db ~msg:"left outer over the pk probe"
          "SELECT probe.x AS x, big.y AS y FROM probe LEFT JOIN big ON \
           probe.k = big.k"
          [ "(1, 101)"; "(1, 101)"; "(2, 103)"; "(3, NULL)" ]);
    Util.tc "inlj: residual predicate demotes matches to unmatched" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE big(k VARCHAR PRIMARY KEY, y INTEGER)";
              "CREATE TABLE probe(k VARCHAR, x INTEGER)";
              "INSERT INTO probe VALUES ('k1', 1), ('k8', 2)" ]
        in
        for i = 0 to 9 do
          Util.exec db
            (Printf.sprintf "INSERT INTO big VALUES ('k%d', %d)" i (100 + i))
        done;
        (* k1 finds its PK row but fails the residual y > 105, so under
           LEFT JOIN it must fall back to the NULL-padded form *)
        Util.check_rows db
          "SELECT probe.x AS x, big.y AS y FROM probe LEFT JOIN big ON \
           probe.k = big.k AND big.y > 105"
          [ "(1, NULL)"; "(2, 108)" ]);
    Util.tc "inlj: secondary index with duplicate indexed keys" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE ev(g VARCHAR, y INTEGER)";
              "CREATE TABLE probe(g VARCHAR, x INTEGER)";
              "INSERT INTO probe VALUES ('g1', 1), ('g9', 2)" ]
        in
        for i = 0 to 7 do
          Util.exec db
            (Printf.sprintf "INSERT INTO ev VALUES ('g%d', %d)" (i mod 4)
               (100 + i))
        done;
        Util.exec db "CREATE INDEX idx_ev_g ON ev(g)";
        (* g1 appears twice in ev: a non-unique index lookup must return
           every copy, and the unmatched probe row must pad under LEFT *)
        Util.check_rows db
          "SELECT probe.x AS x, ev.y AS y FROM probe JOIN ev ON probe.g = ev.g"
          [ "(1, 101)"; "(1, 105)" ];
        Util.check_rows db ~msg:"left outer over the secondary probe"
          "SELECT probe.x AS x, ev.y AS y FROM probe LEFT JOIN ev ON \
           probe.g = ev.g"
          [ "(1, 101)"; "(1, 105)"; "(2, NULL)" ]);
    Util.tc "inlj agrees with the hash join on the same query" (fun () ->
        (* same query text, same data — only the presence of the index
           differs; the two join paths must agree row for row *)
        let mk ~indexed =
          let db =
            Util.db_with
              [ (if indexed then
                   "CREATE TABLE big(k VARCHAR PRIMARY KEY, y INTEGER)"
                 else "CREATE TABLE big(k VARCHAR, y INTEGER)");
                "CREATE TABLE probe(k VARCHAR, x INTEGER)";
                "INSERT INTO probe VALUES ('k2', 1), ('k2', 1), ('k5', 2), \
                 ('nope', 3)" ]
          in
          for i = 0 to 11 do
            Util.exec db
              (Printf.sprintf "INSERT INTO big VALUES ('k%d', %d)" i (200 + i))
          done;
          Util.sorted_rows db
            "SELECT probe.x AS x, big.y AS y FROM probe LEFT JOIN big ON \
             probe.k = big.k"
        in
        Alcotest.(check (list string)) "inlj = hash join" (mk ~indexed:false)
          (mk ~indexed:true));
  ]
