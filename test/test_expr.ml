open Openivm_engine

let eval sql = Expr.eval_const (Openivm_sql.Parser.parse_expression sql)

let check sql expected () =
  Alcotest.(check string) sql expected (Value.to_string (eval sql))

let check_raises sql () =
  match eval sql with
  | exception Error.Sql_error _ -> ()
  | v -> Alcotest.failf "expected error for %S, got %s" sql (Value.to_string v)

let suite =
  [ Util.tc "integer arithmetic" (check "1 + 2 * 3 - 4" "3");
    Util.tc "division is floating-point" (check "7 / 2" "3.5");
    Util.tc "division by zero is NULL" (check "1 / 0" "NULL");
    Util.tc "modulo" (check "7 % 3" "1");
    Util.tc "modulo by zero is NULL" (check "7 % 0" "NULL");
    Util.tc "mixed int/float" (check "1 + 2.5" "3.5");
    Util.tc "unary minus" (check "-(2 + 3)" "-5");
    Util.tc "null propagates through arithmetic" (check "1 + NULL" "NULL");
    Util.tc "null propagates through comparison" (check "1 < NULL" "NULL");
    Util.tc "3vl: true or null" (check "TRUE OR NULL" "true");
    Util.tc "3vl: false or null" (check "FALSE OR NULL" "NULL");
    Util.tc "3vl: false and null" (check "FALSE AND NULL" "false");
    Util.tc "3vl: true and null" (check "TRUE AND NULL" "NULL");
    Util.tc "3vl: not null" (check "NOT NULL" "NULL");
    Util.tc "string concat" (check "'foo' || 'bar'" "foobar");
    Util.tc "concat with null" (check "'foo' || NULL" "NULL");
    Util.tc "string comparison" (check "'abc' < 'abd'" "true");
    Util.tc "between" (check "5 BETWEEN 1 AND 10" "true");
    Util.tc "not between" (check "5 NOT BETWEEN 1 AND 10" "false");
    Util.tc "between null bound" (check "5 BETWEEN NULL AND 10" "NULL");
    Util.tc "in list hit" (check "2 IN (1, 2, 3)" "true");
    Util.tc "in list miss" (check "9 IN (1, 2, 3)" "false");
    Util.tc "in list miss with null" (check "9 IN (1, NULL)" "NULL");
    Util.tc "null in list" (check "NULL IN (1, 2)" "NULL");
    Util.tc "not in with null" (check "9 NOT IN (1, NULL)" "NULL");
    Util.tc "is null" (check "NULL IS NULL" "true");
    Util.tc "is not null" (check "3 IS NOT NULL" "true");
    Util.tc "like: percent" (check "'hello' LIKE 'he%'" "true");
    Util.tc "like: underscore" (check "'hello' LIKE 'h_llo'" "true");
    Util.tc "like: no match" (check "'hello' LIKE 'x%'" "false");
    Util.tc "like: full wildcard" (check "'' LIKE '%'" "true");
    Util.tc "not like" (check "'abc' NOT LIKE '%b%'" "false");
    Util.tc "case: first match wins" (check "CASE WHEN TRUE THEN 1 WHEN TRUE THEN 2 END" "1");
    Util.tc "case: falls to else" (check "CASE WHEN FALSE THEN 1 ELSE 9 END" "9");
    Util.tc "case: no else is NULL" (check "CASE WHEN FALSE THEN 1 END" "NULL");
    Util.tc "case: null condition is not a match" (check "CASE WHEN NULL THEN 1 ELSE 2 END" "2");
    Util.tc "cast int to text" (check "CAST(42 AS VARCHAR)" "42");
    Util.tc "cast text to int" (check "CAST(' 17 ' AS INTEGER)" "17");
    Util.tc "cast float to int rounds" (check "CAST(2.6 AS INTEGER)" "3");
    Util.tc "cast null" (check "CAST(NULL AS INTEGER)" "NULL");
    Util.tc "cast bad text fails" (check_raises "CAST('xyz' AS INTEGER)");
    Util.tc "coalesce" (check "COALESCE(NULL, NULL, 5, 7)" "5");
    Util.tc "coalesce all null" (check "COALESCE(NULL, NULL)" "NULL");
    Util.tc "nullif equal" (check "NULLIF(3, 3)" "NULL");
    Util.tc "nullif differs" (check "NULLIF(3, 4)" "3");
    Util.tc "abs" (check "ABS(-7)" "7");
    Util.tc "round to digits" (check "ROUND(2.345, 2)" "2.35");
    Util.tc "floor/ceil" (fun () ->
        Alcotest.(check string) "floor" "2" (Value.to_string (eval "FLOOR(2.9)"));
        Alcotest.(check string) "ceil" "3" (Value.to_string (eval "CEIL(2.1)")));
    Util.tc "lower/upper" (check "UPPER(LOWER('MiXeD'))" "MIXED");
    Util.tc "length" (check "LENGTH('hello')" "5");
    Util.tc "substr" (check "SUBSTR('hello', 2, 3)" "ell");
    Util.tc "greatest/least" (fun () ->
        Alcotest.(check string) "greatest" "9" (Value.to_string (eval "GREATEST(3, 9, 1)"));
        Alcotest.(check string) "least" "1" (Value.to_string (eval "LEAST(3, 9, 1)")));
    Util.tc "date parts" (fun () ->
        Alcotest.(check string) "year" "2024" (Value.to_string (eval "YEAR(DATE '2024-06-09')"));
        Alcotest.(check string) "month" "6" (Value.to_string (eval "MONTH(DATE '2024-06-09')"));
        Alcotest.(check string) "day" "9" (Value.to_string (eval "DAY(DATE '2024-06-09')")));
    Util.tc "date arithmetic" (check "DATE '2024-06-09' + 1" "2024-06-10");
    Util.tc "date difference" (check "DATE '2024-06-09' - DATE '2024-06-01'" "8");
    Util.tc "unknown function fails" (check_raises "FROBNICATE(1)");
    Util.tc "column in const context fails" (check_raises "some_column + 1");
  ]
