(** Tests for the [Openivm_fuzz] subsystem itself: generator determinism
    and validity, corpus-format round-trip, the greedy shrinker, the
    reproducer command format — plus an engine regression for the planner
    bug the fuzzer's first long campaign caught. *)

module F = Openivm_fuzz

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- generator --- *)

let test_deterministic () =
  let render seed = F.Case.to_string (F.Gen.case ~seed ()) in
  Alcotest.(check string) "same seed, same case" (render 7) (render 7);
  Alcotest.(check bool) "different seeds diverge" true (render 7 <> render 8)

let test_generated_cases_pass () =
  for seed = 300 to 307 do
    let case = F.Gen.case ~seed ~max_steps:6 ~queries:2 () in
    match (F.Oracle.run case).F.Oracle.failure with
    | Some f -> Alcotest.fail f.F.Oracle.message
    | None -> ()
  done

(* --- corpus format --- *)

let test_case_roundtrip () =
  let case =
    { (F.Gen.case ~seed:11 ()) with
      F.Case.note = "round-trip probe";
      strategies = [ Openivm.Flags.Union_regroup ];
      dialects = [ Openivm_sql.Dialect.postgres ] }
  in
  match F.Case.of_string (F.Case.to_string case) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check string) "to_string . of_string = id"
      (F.Case.to_string case) (F.Case.to_string back)

let test_of_string_rejects () =
  let bad text =
    match F.Case.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted invalid corpus text: %s" text
  in
  bad "-- openivm-fuzz reproducer v1\n-- schema:\n";
  bad "SELECT 1\n";
  bad "-- schema:\nCREATE TABLE t(a INTEGER)\n-- seed: x\n-- queries:\nSELECT a FROM t\n";
  (* a multi-statement view section is a cascade stack, not an error *)
  match
    F.Case.of_string
      "-- schema:\nCREATE TABLE t(a INTEGER)\n-- view:\nCREATE MATERIALIZED \
       VIEW v AS SELECT a FROM t\nCREATE MATERIALIZED VIEW w AS SELECT a FROM v\n"
  with
  | Error e -> Alcotest.failf "cascade view section rejected: %s" e
  | Ok c ->
    Alcotest.(check int) "two views parsed" 2 (List.length c.F.Case.views)

(* --- the reproducer command --- *)

let test_command_format () =
  let case = { F.Case.empty with F.Case.seed = 99; max_steps = 20 } in
  Alcotest.(check string) "bare"
    "openivm fuzz --seed 99 --cases 1 --max-steps 20" (F.Case.command case);
  Alcotest.(check string) "pinned config"
    "openivm fuzz --seed 99 --cases 1 --max-steps 20 --strategy \
     rederive_affected --dialect postgres"
    (F.Case.command ~strategy:Openivm.Flags.Rederive_affected
       ~dialect:Openivm_sql.Dialect.postgres case)

let test_failure_embeds_command () =
  (* break a generated case by pointing its view at a missing table; the
     oracle failure message must carry the exact reproducer invocation *)
  let case =
    { (F.Gen.case ~seed:5 ~max_steps:3 ~queries:0 ()) with
      F.Case.views =
        [ "CREATE MATERIALIZED VIEW v AS SELECT missing_col AS a FROM \
           no_such_table" ] }
  in
  match F.Oracle.first_failure case with
  | None -> Alcotest.fail "expected the broken case to fail"
  | Some msg ->
    Alcotest.(check bool) "message embeds the reproducer command" true
      (contains ~sub:("reproduce: " ^ F.Case.command case) msg)

(* --- the shrinker --- *)

(** An injected oracle: "fails" iff the workload still contains both
    sentinel statements. 50 steps must come down to just those two —
    well under the ≤5 the acceptance bar asks for — and deterministically
    so. *)
let test_shrink_50_steps () =
  let workload =
    List.init 50 (fun i -> Printf.sprintf "INSERT INTO fact VALUES (%d)" i)
  in
  let case =
    { F.Case.empty with
      F.Case.seed = 1; max_steps = 50;
      schema = [ "CREATE TABLE fact(v INTEGER)" ];
      workload }
  in
  let oracle c =
    let has sub = List.exists (contains ~sub) c.F.Case.workload in
    if has "VALUES (13)" && has "VALUES (37)" then Some "injected failure"
    else None
  in
  let minimized, stats = F.Shrink.minimize ~oracle case in
  Alcotest.(check bool) "shrunk to <= 5 steps" true
    (List.length minimized.F.Case.workload <= 5);
  Alcotest.(check (option string)) "still fails" (Some "injected failure")
    (oracle minimized);
  Alcotest.(check bool) "did some work" true (stats.F.Shrink.attempts > 0);
  let again, _ = F.Shrink.minimize ~oracle case in
  Alcotest.(check string) "deterministic"
    (F.Case.to_string minimized) (F.Case.to_string again)

let test_shrink_keeps_passing_case () =
  let case = F.Gen.case ~seed:3 ~max_steps:4 () in
  let minimized, stats = F.Shrink.minimize ~oracle:(fun _ -> None) case in
  Alcotest.(check string) "non-failing case untouched"
    (F.Case.to_string case) (F.Case.to_string minimized);
  Alcotest.(check int) "nothing kept" 0 stats.F.Shrink.kept

let test_shrink_view () =
  (* the view pass drops the WHERE clause and surplus projections as long
     as the oracle keeps failing *)
  let case =
    { F.Case.empty with
      F.Case.schema = [ "CREATE TABLE t(a INTEGER, b INTEGER)" ];
      views =
        [ "CREATE MATERIALIZED VIEW v AS SELECT a AS g1, SUM(b) AS s, \
           COUNT(*) AS n FROM t WHERE a > 3 GROUP BY a" ] }
  in
  let oracle c =
    match c.F.Case.views with
    | [ v ] when contains ~sub:"SUM" v -> Some "injected"
    | _ -> None
  in
  let minimized, _ = F.Shrink.minimize ~oracle case in
  let v = List.hd minimized.F.Case.views in
  Alcotest.(check bool) "WHERE dropped" false (contains ~sub:"WHERE" v);
  Alcotest.(check bool) "COUNT dropped" false (contains ~sub:"COUNT" v);
  Alcotest.(check bool) "SUM kept" true (contains ~sub:"SUM" v)

let test_shrink_cascade_drops_last_view () =
  (* a failure that only needs the first view: the shrinker must discard
     the downstream view whole while leaving the upstream untouched *)
  let case =
    { F.Case.empty with
      F.Case.schema = [ "CREATE TABLE t(a INTEGER, b INTEGER)" ];
      views =
        [ "CREATE MATERIALIZED VIEW v AS SELECT a AS g1, SUM(b) AS a1 \
           FROM t GROUP BY a";
          "CREATE MATERIALIZED VIEW v2 AS SELECT g1 AS h1, MAX(a1) AS b1 \
           FROM v GROUP BY g1" ] }
  in
  let oracle c =
    match c.F.Case.views with
    | v :: _ when contains ~sub:"SUM" v -> Some "injected"
    | _ -> None
  in
  let minimized, _ = F.Shrink.minimize ~oracle case in
  Alcotest.(check int) "downstream view dropped" 1
    (List.length minimized.F.Case.views);
  Alcotest.(check bool) "upstream survives" true
    (contains ~sub:"SUM" (List.hd minimized.F.Case.views))

let test_generated_cascades_pass () =
  (* forced 2-level stacks across a seed range: every level must match a
     full recompute under the whole strategy/dialect matrix *)
  for seed = 400 to 405 do
    let case = F.Gen.case ~seed ~max_steps:6 ~queries:0 ~cascade:true () in
    Alcotest.(check int)
      (Printf.sprintf "seed %d generates a stack" seed)
      2
      (List.length case.F.Case.views);
    match (F.Oracle.run case).F.Oracle.failure with
    | Some f -> Alcotest.fail f.F.Oracle.message
    | None -> ()
  done

(* --- regression: the bug the first 2000-case campaign caught --- *)

let test_shared_bare_name_group_keys () =
  let db =
    Util.db_with
      [ "CREATE TABLE fact(k2 INTEGER, k3 INTEGER, v INTEGER)";
        "CREATE TABLE d2(k2 INTEGER, label VARCHAR)";
        "CREATE TABLE d3(k3 INTEGER, label VARCHAR)" ]
  in
  Util.exec db "INSERT INTO d2 VALUES (0, 'a'), (1, 'b')";
  Util.exec db "INSERT INTO d3 VALUES (0, 'x'), (1, 'y')";
  Util.exec db "INSERT INTO fact VALUES (0, 0, 5), (0, 1, 7), (1, 0, 2)";
  (* grouping by two qualified keys that share a bare column name used to
     raise "ambiguous column reference" at plan time *)
  let rows =
    Util.sorted_rows db
      "SELECT d2.label AS g1, d3.label AS g2, SUM(fact.v) AS s FROM fact \
       JOIN d2 ON fact.k2 = d2.k2 JOIN d3 ON fact.k3 = d3.k3 GROUP BY \
       d2.label, d3.label"
  in
  Alcotest.(check (list string)) "qualified group keys resolve"
    [ "(a, x, 5)"; "(a, y, 7)"; "(b, x, 2)" ]
    rows

let suite =
  [ Util.tc "generator is deterministic per seed" test_deterministic;
    Util.tc "generated cases pass the oracle" test_generated_cases_pass;
    Util.tc "corpus format round-trips" test_case_roundtrip;
    Util.tc "corpus parser rejects invalid input" test_of_string_rejects;
    Util.tc "reproducer command format" test_command_format;
    Util.tc "oracle failures embed the reproducer" test_failure_embeds_command;
    Util.tc "shrinker: 50 steps -> <= 5, deterministic" test_shrink_50_steps;
    Util.tc "shrinker leaves passing cases alone" test_shrink_keeps_passing_case;
    Util.tc "shrinker simplifies the view" test_shrink_view;
    Util.tc "shrinker drops a redundant downstream view"
      test_shrink_cascade_drops_last_view;
    Util.tc "generated cascade stacks pass the oracle"
      test_generated_cascades_pass;
    Util.tc "regression: group keys sharing a bare name"
      test_shared_bare_name_group_keys ]
