(** Golden test: the paper's Listing 1 input must compile (under the
    paper-compat flags) into the Listing 2 shape — same DDL objects, same
    four-step script, same clause structure. We assert on the exact emitted
    strings so any drift in the emitter is caught; the single deliberate
    deviation from the paper's text (projecting the delta-side group key in
    the combine, so newly appearing groups keep their key) is documented in
    DESIGN.md. *)

open Openivm_engine

let compile_paper () =
  let db =
    Util.db_with
      [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)" ]
  in
  Openivm.Compiler.compile ~flags:Openivm.Flags.paper (Database.catalog db)
    "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
     SUM(group_value) AS total_value FROM groups GROUP BY group_index"

let steps () =
  let c = compile_paper () in
  List.map
    (fun (purpose, sql) -> (purpose, sql))
    (Openivm.Compiler.script_steps c)

let suite =
  [ Util.tc "delta DDL matches Listing 1 environment" (fun () ->
        let c = compile_paper () in
        let ddl =
          List.map
            (Openivm_sql.Pretty.stmt_to_sql Openivm_sql.Dialect.duckdb)
            c.Openivm.Compiler.ddl
        in
        Alcotest.(check (list string)) "ddl"
          [ "CREATE TABLE delta_groups (group_index VARCHAR, group_value \
             INTEGER, _duckdb_ivm_multiplicity BOOLEAN)";
            "CREATE TABLE query_groups (group_index VARCHAR, total_value \
             INTEGER, PRIMARY KEY (group_index))";
            "CREATE TABLE delta_query_groups (group_index VARCHAR, \
             total_value INTEGER, _duckdb_ivm_multiplicity BOOLEAN)";
            "CREATE INDEX __ivm_idx_query_groups ON delta_query_groups \
             (group_index)" ]
          ddl);
    Util.tc "step 1 matches Listing 2's first INSERT" (fun () ->
        match steps () with
        | ("fill_delta_view", sql) :: _ ->
          Alcotest.(check string) "fill"
            "INSERT INTO delta_query_groups SELECT group_index AS \
             group_index, SUM(group_value) AS total_value, \
             _duckdb_ivm_multiplicity AS _duckdb_ivm_multiplicity FROM \
             delta_groups AS groups GROUP BY group_index, \
             _duckdb_ivm_multiplicity"
            sql
        | _ -> Alcotest.fail "missing fill step");
    Util.tc "step 2 matches Listing 2's upsert shape" (fun () ->
        match List.filter (fun (p, _) -> p = "combine") (steps ()) with
        | [ (_, sql) ] ->
          Alcotest.(check string) "combine"
            "INSERT OR REPLACE INTO query_groups WITH ivm_cte AS (SELECT \
             group_index AS group_index, SUM(CASE WHEN \
             _duckdb_ivm_multiplicity THEN total_value ELSE -total_value \
             END) AS total_value FROM delta_query_groups GROUP BY \
             group_index) SELECT __ivm_d.group_index AS group_index, \
             SUM(COALESCE(query_groups.total_value, 0) + \
             __ivm_d.total_value) AS total_value FROM ivm_cte AS __ivm_d \
             LEFT JOIN query_groups ON query_groups.group_index = \
             __ivm_d.group_index GROUP BY __ivm_d.group_index"
            sql
        | _ -> Alcotest.fail "expected exactly one combine statement");
    Util.tc "steps 3 and 4 match Listing 2's deletes" (fun () ->
        let tail =
          List.filter (fun (p, _) -> p = "prune" || p = "cleanup") (steps ())
        in
        Alcotest.(check (list (pair string string))) "deletes"
          [ ("prune", "DELETE FROM query_groups WHERE total_value = 0");
            ("cleanup", "DELETE FROM delta_query_groups");
            ("cleanup", "DELETE FROM delta_groups") ]
          tail);
    Util.tc "paper-compat script executes end to end" (fun () ->
        let db =
          Util.db_with
            [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
              "INSERT INTO groups VALUES ('a', 1), ('a', 2), ('b', 5)" ]
        in
        let v =
          Openivm.Runner.install ~flags:Openivm.Flags.paper db
            "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
             SUM(group_value) AS total_value FROM groups GROUP BY group_index"
        in
        Util.exec db "INSERT INTO groups VALUES ('a', 10), ('c', 4)";
        Util.exec db "DELETE FROM groups WHERE group_index = 'b'";
        let r = Openivm.Runner.contents v ~order_by:"group_index" in
        Alcotest.(check (list string)) "contents"
          [ "(a, 13)"; "(c, 4)" ]
          (Util.rows_of r));
  ]
