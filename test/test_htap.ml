open Openivm_engine
open Openivm_htap

let gen_value =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Value.Str s) (string_size (int_bound 20));
        map (fun d -> Value.Date d) (int_range (-100000) 100000) ])

let gen_row = QCheck.Gen.(map Array.of_list (list_size (int_bound 8) gen_value))

let bridge_qcheck =
  [ QCheck.Test.make ~count:500 ~name:"bridge wire format round-trips"
      (QCheck.make ~print:(fun r -> Row.to_string (Array.of_list r))
         QCheck.Gen.(list_size (int_bound 8) gen_value))
      (fun cells ->
         let row = Array.of_list cells in
         Row.equal row (Bridge.deserialize_row (Bridge.serialize_row row))) ]

let schema_sql =
  "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER);"

let view_sql =
  "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
   SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP BY \
   group_index"

let pipeline_matches_oltp p =
  let got =
    List.sort String.compare
      (Util.rows_of
         (Pipeline.query p
            "SELECT group_index, total_value, n FROM query_groups"))
  in
  let expected =
    List.sort String.compare
      (Util.rows_of
         (Oltp.query (Pipeline.oltp p)
            "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) \
             AS n FROM groups GROUP BY group_index"))
  in
  Alcotest.(check (list string)) "cross-system view = OLTP recompute" expected got

let suite =
  [ Util.tc "bridge serialization roundtrips" (fun () ->
        let rows : Row.t list =
          [ [| Value.Int 42; Value.Str "hello"; Value.Null |];
            [| Value.Bool true; Value.Float 2.5 |];
            [| Value.Str "with:colon and 'quote'"; Value.Str "" |];
            (match Value.date_of_string "2024-06-09" with
             | d -> [| d |]) ]
        in
        let b = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 () in
        let back = Bridge.ship b rows in
        Alcotest.(check bool) "equal" true (List.for_all2 Row.equal rows back));
    Util.tc "bridge accounts batches and bytes" (fun () ->
        let b = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 () in
        ignore (Bridge.ship b [ [| Value.Int 1 |] ]);
        ignore (Bridge.ship b [ [| Value.Int 2 |]; [| Value.Int 3 |] ]);
        let batches, rows, bytes = Bridge.stats b in
        Alcotest.(check int) "batches" 2 batches;
        Alcotest.(check int) "rows" 3 rows;
        Alcotest.(check bool) "bytes > 0" true (bytes > 0));
    Util.tc "oltp capture records inserts and deletes" (fun () ->
        let oltp = Oltp.create ~latency:0.0 () in
        ignore (Oltp.exec oltp "CREATE TABLE t(a INTEGER)");
        Oltp.register_capture oltp ~base:"t" ~delta:"delta_t";
        ignore (Oltp.exec oltp "INSERT INTO t VALUES (1), (2)");
        ignore (Oltp.exec oltp "DELETE FROM t WHERE a = 1");
        Alcotest.(check int) "pending" 3 (Oltp.pending oltp ~base:"t");
        let drained = Oltp.drain oltp ~base:"t" in
        Alcotest.(check int) "drained" 3 (List.length drained);
        Alcotest.(check int) "cleared" 0 (Oltp.pending oltp ~base:"t"));
    Util.tc "cross-system view tracks the OLTP tables" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
        pipeline_matches_oltp p;
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 10)");
        ignore (Pipeline.exec_oltp p "DELETE FROM groups WHERE group_index = 'b'");
        pipeline_matches_oltp p;
        ignore (Pipeline.exec_oltp p
                  "UPDATE groups SET group_value = group_value * 2 WHERE group_index = 'a'");
        pipeline_matches_oltp p);
    Util.tc "cross-system pipeline survives an empty sync" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        Alcotest.(check int) "no deltas" 0 (Pipeline.sync p);
        pipeline_matches_oltp p);
    Util.tc "randomized transactional workload stays consistent" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        let tx = Txgen.create ~seed:99 ~group_domain:8 () in
        List.iter
          (fun sql -> ignore (Pipeline.exec_oltp p sql))
          (Txgen.seed_rows tx 40);
        for _round = 1 to 6 do
          List.iter
            (fun sql -> ignore (Pipeline.exec_oltp p sql))
            (Txgen.batch tx 25);
          pipeline_matches_oltp p
        done);
    Util.tc "join view across systems maintains replicas" (fun () ->
        let p =
          Pipeline.create ~oltp_latency:0.0
            ~schema_sql:
              "CREATE TABLE sales(cust INTEGER, amount INTEGER); CREATE \
               TABLE customers(cust INTEGER, region VARCHAR);"
            ~view_sql:
              "CREATE MATERIALIZED VIEW rs AS SELECT customers.region, \
               SUM(sales.amount) AS total FROM sales JOIN customers ON \
               sales.cust = customers.cust GROUP BY customers.region"
            ()
        in
        ignore (Pipeline.exec_oltp p "INSERT INTO customers VALUES (1, 'eu'), (2, 'us')");
        ignore (Pipeline.exec_oltp p "INSERT INTO sales VALUES (1, 10), (2, 20), (1, 5)");
        ignore (Pipeline.sync p);
        ignore (Pipeline.exec_oltp p "DELETE FROM sales WHERE amount = 10");
        let got =
          List.sort String.compare
            (Util.rows_of (Pipeline.query p "SELECT region, total FROM rs"))
        in
        Alcotest.(check (list string)) "join view" [ "(eu, 5)"; "(us, 20)" ] got);
    Util.tc "query_without_ivm ships the base tables" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 1), ('a', 2)");
        let r = Pipeline.query_without_ivm p in
        Alcotest.(check (list string)) "recompute result" [ "(a, 3, 2)" ]
          (Util.rows_of r));
    Util.tc "generated trigger DDL mentions the delta table" (fun () ->
        let db = Util.db_with [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)" ] in
        let c =
          Openivm.Compiler.compile ~flags:Openivm.Flags.paper
            (Database.catalog db) view_sql
        in
        match c.Openivm.Compiler.trigger_sql with
        | [ ("groups", sql) ] ->
          Alcotest.(check bool) "mentions delta" true
            (let needle = "INSERT INTO delta_groups" in
             let rec go i =
               i + String.length needle <= String.length sql
               && (String.sub sql i (String.length needle) = needle || go (i + 1))
             in
             go 0)
        | _ -> Alcotest.fail "expected one trigger");
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) bridge_qcheck
