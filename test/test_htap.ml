open Openivm_engine
open Openivm_htap

let gen_value =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1e9);
        map (fun f -> Value.Float f)
          (oneofl [ nan; infinity; neg_infinity; 0.0; -0.0; 0x1.5p-42 ]);
        map (fun s -> Value.Str s) (string_size (int_bound 20));
        map (fun d -> Value.Date d) (int_range (-100000) 100000) ])

let gen_row = QCheck.Gen.(map Array.of_list (list_size (int_bound 8) gen_value))

let bridge_qcheck =
  [ QCheck.Test.make ~count:500 ~name:"bridge wire format round-trips"
      (QCheck.make ~print:(fun r -> Row.to_string (Array.of_list r))
         QCheck.Gen.(list_size (int_bound 8) gen_value))
      (fun cells ->
         let row = Array.of_list cells in
         Row.equal row (Bridge.deserialize_row (Bridge.serialize_row row))) ]

let schema_sql =
  "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER);"

let view_sql =
  "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
   SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP BY \
   group_index"

let pipeline_matches_oltp p =
  let got =
    List.sort String.compare
      (Util.rows_of
         (Pipeline.query p
            "SELECT group_index, total_value, n FROM query_groups"))
  in
  let expected =
    List.sort String.compare
      (Util.rows_of
         (Oltp.query (Pipeline.oltp p)
            "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) \
             AS n FROM groups GROUP BY group_index"))
  in
  Alcotest.(check (list string)) "cross-system view = OLTP recompute" expected got

let suite =
  [ Util.tc "bridge serialization roundtrips" (fun () ->
        let rows : Row.t list =
          [ [| Value.Int 42; Value.Str "hello"; Value.Null |];
            [| Value.Bool true; Value.Float 2.5 |];
            [| Value.Str "with:colon and 'quote'"; Value.Str "" |];
            (match Value.date_of_string "2024-06-09" with
             | d -> [| d |]) ]
        in
        let b = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 () in
        let back = Bridge.ship b rows in
        Alcotest.(check bool) "equal" true (List.for_all2 Row.equal rows back));
    Util.tc "bridge accounts batches and bytes" (fun () ->
        let b = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 () in
        ignore (Bridge.ship b [ [| Value.Int 1 |] ]);
        ignore (Bridge.ship b [ [| Value.Int 2 |]; [| Value.Int 3 |] ]);
        let batches, rows, bytes = Bridge.stats b in
        Alcotest.(check int) "batches" 2 batches;
        Alcotest.(check int) "rows" 3 rows;
        Alcotest.(check bool) "bytes > 0" true (bytes > 0));
    Util.tc "oltp capture records inserts and deletes" (fun () ->
        let oltp = Oltp.create ~latency:0.0 () in
        ignore (Oltp.exec oltp "CREATE TABLE t(a INTEGER)");
        Oltp.register_capture oltp ~base:"t" ~delta:"delta_t";
        ignore (Oltp.exec oltp "INSERT INTO t VALUES (1), (2)");
        ignore (Oltp.exec oltp "DELETE FROM t WHERE a = 1");
        Alcotest.(check int) "pending" 3 (Oltp.pending oltp ~base:"t");
        let drained = Oltp.drain oltp ~base:"t" in
        Alcotest.(check int) "drained" 3 (List.length drained);
        Alcotest.(check int) "cleared" 0 (Oltp.pending oltp ~base:"t"));
    Util.tc "cross-system view tracks the OLTP tables" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
        pipeline_matches_oltp p;
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 10)");
        ignore (Pipeline.exec_oltp p "DELETE FROM groups WHERE group_index = 'b'");
        pipeline_matches_oltp p;
        ignore (Pipeline.exec_oltp p
                  "UPDATE groups SET group_value = group_value * 2 WHERE group_index = 'a'");
        pipeline_matches_oltp p);
    Util.tc "cross-system pipeline survives an empty sync" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        Alcotest.(check int) "no deltas" 0 (Pipeline.sync p);
        pipeline_matches_oltp p);
    Util.tc "randomized transactional workload stays consistent" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        let tx = Txgen.create ~seed:99 ~group_domain:8 () in
        List.iter
          (fun sql -> ignore (Pipeline.exec_oltp p sql))
          (Txgen.seed_rows tx 40);
        for _round = 1 to 6 do
          List.iter
            (fun sql -> ignore (Pipeline.exec_oltp p sql))
            (Txgen.batch tx 25);
          pipeline_matches_oltp p
        done);
    Util.tc "join view across systems maintains replicas" (fun () ->
        let p =
          Pipeline.create ~oltp_latency:0.0
            ~schema_sql:
              "CREATE TABLE sales(cust INTEGER, amount INTEGER); CREATE \
               TABLE customers(cust INTEGER, region VARCHAR);"
            ~view_sql:
              "CREATE MATERIALIZED VIEW rs AS SELECT customers.region, \
               SUM(sales.amount) AS total FROM sales JOIN customers ON \
               sales.cust = customers.cust GROUP BY customers.region"
            ()
        in
        ignore (Pipeline.exec_oltp p "INSERT INTO customers VALUES (1, 'eu'), (2, 'us')");
        ignore (Pipeline.exec_oltp p "INSERT INTO sales VALUES (1, 10), (2, 20), (1, 5)");
        ignore (Pipeline.sync p);
        ignore (Pipeline.exec_oltp p "DELETE FROM sales WHERE amount = 10");
        let got =
          List.sort String.compare
            (Util.rows_of (Pipeline.query p "SELECT region, total FROM rs"))
        in
        Alcotest.(check (list string)) "join view" [ "(eu, 5)"; "(us, 20)" ] got);
    Util.tc "query_without_ivm ships the base tables" (fun () ->
        let p = Pipeline.create ~oltp_latency:0.0 ~schema_sql ~view_sql () in
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 1), ('a', 2)");
        let r = Pipeline.query_without_ivm p in
        Alcotest.(check (list string)) "recompute result" [ "(a, 3, 2)" ]
          (Util.rows_of r));
    Util.tc "wire format round-trips edge values" (fun () ->
        let edge_rows : Row.t list =
          [ [| Value.Str ""; Value.Str ":"; Value.Str "12:34"; Value.Str "0:" |];
            [| Value.Str "7:n"; Value.Str "\x00"; Value.Str "1:ss2:tt" |];
            [| Value.Int min_int; Value.Int max_int; Value.Int (-1) |];
            [| Value.Float nan; Value.Float infinity; Value.Float neg_infinity |];
            [| Value.Float 0x1.fffffffffffffp+1023; Value.Float (-0.0);
               Value.Float 5e-324 |];
            [| Value.Null; Value.Null |];
            [| Value.date_of_string "1969-12-31"; Value.date_of_string "9999-01-01" |];
            [||] ]
        in
        List.iter
          (fun row ->
             Alcotest.(check bool)
               (Printf.sprintf "round-trip %s" (Row.to_string row))
               true
               (Row.equal row (Bridge.deserialize_row (Bridge.serialize_row row))))
          edge_rows);
    Util.tc "deserialize rejects corruption honestly" (fun () ->
        (* a date payload that no longer parses must fail, not become NULL *)
        let wire_bad_date = "5:zzzzzd" in
        Alcotest.check_raises "bad date"
          (Error.Sql_error "invalid date \"zzzzz\" (expected YYYY-MM-DD)")
          (fun () -> ignore (Bridge.deserialize_row wire_bad_date));
        let raises wire =
          match Bridge.deserialize_row wire with
          | _ -> Alcotest.failf "expected failure on %S" wire
          | exception Error.Sql_error _ -> ()
        in
        raises "1:xq";       (* bad tag *)
        raises "3:abs";      (* truncated: length overruns the wire *)
        raises "abc";        (* no length prefix *)
        raises "9one:fives"  (* garbage length *));
    Util.tc "batch checksum catches wire corruption" (fun () ->
        let rows = [ [| Value.Int 7; Value.Str "hello" |] ] in
        let b = Bridge.make_batch ~source:"t" ~seq:1 rows in
        Alcotest.(check bool) "clean batch verifies" true (Bridge.verify b);
        Alcotest.(check bool) "rows recovered" true
          (List.for_all2 Row.equal rows (Bridge.batch_rows b));
        let corrupted =
          { b with
            Bridge.payload =
              Array.map
                (fun s ->
                   let bs = Bytes.of_string s in
                   Bytes.set bs 2 'X';
                   Bytes.to_string bs)
                b.Bridge.payload }
        in
        Alcotest.(check bool) "corrupted batch rejected" false
          (Bridge.verify corrupted));
    Util.tc "outbox keeps rows until acknowledged" (fun () ->
        let oltp = Oltp.create ~latency:0.0 () in
        ignore (Oltp.exec oltp "CREATE TABLE t(a INTEGER)");
        Oltp.register_capture oltp ~base:"t" ~delta:"delta_t";
        ignore (Oltp.exec oltp "INSERT INTO t VALUES (1), (2)");
        (match Oltp.begin_batch oltp ~base:"t" with
         | Some (seq, rows) ->
           Alcotest.(check int) "first seq" 1 seq;
           Alcotest.(check int) "two rows" 2 (List.length rows);
           (* a failed transmission costs nothing: same batch again *)
           (match Oltp.begin_batch oltp ~base:"t" with
            | Some (seq', rows') ->
              Alcotest.(check int) "same seq on retry" seq seq';
              Alcotest.(check int) "same rows on retry" 2 (List.length rows')
            | None -> Alcotest.fail "retry lost the batch");
           (* rows captured while in flight queue behind the batch *)
           ignore (Oltp.exec oltp "INSERT INTO t VALUES (3)");
           Alcotest.(check int) "pending counts queued row" 3
             (Oltp.pending oltp ~base:"t");
           Oltp.ack oltp ~base:"t" ~seq;
           Alcotest.(check int) "ack removes only the batch" 1
             (Oltp.pending oltp ~base:"t");
           Oltp.ack oltp ~base:"t" ~seq;  (* duplicate ack is a no-op *)
           Alcotest.(check int) "duplicate ack is a no-op" 1
             (Oltp.pending oltp ~base:"t");
           (match Oltp.begin_batch oltp ~base:"t" with
            | Some (seq2, rows2) ->
              Alcotest.(check int) "next seq" 2 seq2;
              Alcotest.(check int) "queued row ships next" 1 (List.length rows2)
            | None -> Alcotest.fail "queued row lost")
         | None -> Alcotest.fail "expected a batch"));
    Util.tc "double capture registration is rejected" (fun () ->
        let oltp = Oltp.create ~latency:0.0 () in
        ignore (Oltp.exec oltp "CREATE TABLE t(a INTEGER)");
        Oltp.register_capture oltp ~base:"t" ~delta:"delta_t";
        (match Oltp.register_capture oltp ~base:"t" ~delta:"delta_t2" with
         | () -> Alcotest.fail "second registration must fail"
         | exception Error.Sql_error _ -> ());
        (* and every change is still captured exactly once *)
        ignore (Oltp.exec oltp "INSERT INTO t VALUES (1)");
        Alcotest.(check int) "captured once" 1 (Oltp.pending oltp ~base:"t"));
    Util.tc "duplicated batches are applied exactly once" (fun () ->
        let faults =
          Fault.create ~seed:5 { Fault.none with Fault.duplicate = 1.0 }
        in
        let bridge = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 ~faults () in
        let p = Pipeline.create ~oltp_latency:0.0 ~bridge ~schema_sql ~view_sql () in
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
        pipeline_matches_oltp p;
        ignore (Pipeline.exec_oltp p "DELETE FROM groups WHERE group_index = 'b'");
        pipeline_matches_oltp p;
        let s = Pipeline.stats p in
        Alcotest.(check bool) "duplicates were detected" true
          (s.Pipeline.deduped > 0));
    Util.tc "dropped batches are retried until delivered" (fun () ->
        (* 60% drop: each batch needs a few attempts but lands within the
           retry budget *)
        let faults = Fault.create ~seed:3 { Fault.none with Fault.drop = 0.6 } in
        let bridge = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 ~faults () in
        let p =
          Pipeline.create ~oltp_latency:0.0 ~bridge ~backoff_base:1e-6
            ~schema_sql ~view_sql ()
        in
        for i = 1 to 10 do
          ignore (Pipeline.exec_oltp p
                    (Printf.sprintf "INSERT INTO groups VALUES ('g%d', %d)" (i mod 3) i));
          (* the view may lag when a batch exhausts its retry budget — the
             batch stays in the outbox and lands on a later sync *)
          ignore (Pipeline.sync p)
        done;
        (* recover replays whatever the retry budget left behind *)
        let r = Pipeline.recover p in
        Alcotest.(check bool) "converged" true r.Pipeline.converged;
        Alcotest.(check bool) "no resync needed — replay sufficed" false
          r.Pipeline.resynced;
        pipeline_matches_oltp p;
        let s = Pipeline.stats p in
        Alcotest.(check bool) "retries happened" true (s.Pipeline.retries > 0);
        Alcotest.(check int) "nothing left unshipped" 0
          (Oltp.pending (Pipeline.oltp p) ~base:"groups"));
    Util.tc "corrupted batches are rejected and resent" (fun () ->
        let faults = Fault.create ~seed:11 { Fault.none with Fault.corrupt = 0.5 } in
        let bridge = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 ~faults () in
        let p =
          Pipeline.create ~oltp_latency:0.0 ~bridge ~backoff_base:1e-6
            ~schema_sql ~view_sql ()
        in
        for i = 1 to 20 do
          ignore (Pipeline.exec_oltp p
                    (Printf.sprintf "INSERT INTO groups VALUES ('g%d', %d)" (i mod 3) i));
          if i mod 4 = 0 then ignore (Pipeline.sync p)
        done;
        pipeline_matches_oltp p;
        let s = Pipeline.stats p in
        Alcotest.(check bool) "checksum failures detected" true
          (s.Pipeline.checksum_failures > 0);
        Alcotest.(check bool) "no corrupt batch was applied" true
          (Pipeline.verify p));
    Util.tc "mid-apply crash rolls back and recovers by replay" (fun () ->
        let faults = Fault.create ~seed:2 { Fault.none with Fault.crash = 1.0 } in
        let bridge = Bridge.create ~batch_latency:0.0 ~per_row_cost:0.0 ~faults () in
        let p = Pipeline.create ~oltp_latency:0.0 ~bridge ~schema_sql ~view_sql () in
        ignore (Pipeline.exec_oltp p "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
        ignore (Pipeline.sync p);
        Alcotest.(check bool) "OLAP is down" true (Pipeline.crashed p);
        (* the partial batch was rolled back: OLAP delta table is empty *)
        let delta_name =
          Openivm.Compiler.delta_table
            (Pipeline.view p).Openivm.Runner.compiled "groups"
        in
        Alcotest.(check int) "no partial batch visible" 0
          (Table.row_count
             (Catalog.find_table (Database.catalog (Pipeline.olap p))
                delta_name));
        (* and the batch is still in the outbox *)
        Alcotest.(check bool) "batch unacknowledged" true
          (Oltp.inflight_seq (Pipeline.oltp p) ~base:"groups" <> None);
        (match Pipeline.query p "SELECT * FROM query_groups" with
         | _ -> Alcotest.fail "query on a downed OLAP must fail"
         | exception Error.Sql_error _ -> ());
        let r = Pipeline.recover p in
        Alcotest.(check bool) "replay recovered without resync" true
          (r.Pipeline.converged && not r.Pipeline.resynced);
        pipeline_matches_oltp p);
    Util.tc "full resync rebuilds view and replicas from base" (fun () ->
        let p =
          Pipeline.create ~oltp_latency:0.0
            ~schema_sql:
              "CREATE TABLE sales(cust INTEGER, amount INTEGER); CREATE \
               TABLE customers(cust INTEGER, region VARCHAR);"
            ~view_sql:
              "CREATE MATERIALIZED VIEW rs AS SELECT customers.region, \
               SUM(sales.amount) AS total FROM sales JOIN customers ON \
               sales.cust = customers.cust GROUP BY customers.region"
            ()
        in
        ignore (Pipeline.exec_oltp p "INSERT INTO customers VALUES (1, 'eu'), (2, 'us')");
        ignore (Pipeline.exec_oltp p "INSERT INTO sales VALUES (1, 10), (2, 20)");
        ignore (Pipeline.sync p);
        (* sabotage the OLAP side: clobber the replica and the view *)
        ignore (Table.truncate
                  (Catalog.find_table (Database.catalog (Pipeline.olap p)) "sales"));
        ignore (Database.exec (Pipeline.olap p) "DELETE FROM rs");
        Alcotest.(check bool) "diverged" false (Pipeline.verify p);
        Pipeline.full_resync p;
        Alcotest.(check bool) "converged after resync" true (Pipeline.verify p);
        (* replicas match the OLTP base tables again *)
        List.iter
          (fun base ->
             let rows db =
               List.sort String.compare
                 (List.map Row.to_string
                    (Table.to_rows (Catalog.find_table (Database.catalog db) base)))
             in
             Alcotest.(check (list string))
               (base ^ " replica matches")
               (rows (Oltp.db (Pipeline.oltp p)))
               (rows (Pipeline.olap p)))
          [ "sales"; "customers" ];
        (* and the pipeline still tracks new traffic afterwards *)
        ignore (Pipeline.exec_oltp p "INSERT INTO sales VALUES (1, 5)");
        ignore (Pipeline.sync p);
        Alcotest.(check bool) "still incremental after resync" true
          (Pipeline.verify p));
    Util.tc "replica misses are counted, strict mode raises" (fun () ->
        let make strict =
          let p =
            Pipeline.create ~oltp_latency:0.0 ~strict_replica:strict
              ~schema_sql:
                "CREATE TABLE sales(cust INTEGER, amount INTEGER); CREATE \
                 TABLE customers(cust INTEGER, region VARCHAR);"
              ~view_sql:
                "CREATE MATERIALIZED VIEW rs AS SELECT customers.region, \
                 SUM(sales.amount) AS total FROM sales JOIN customers ON \
                 sales.cust = customers.cust GROUP BY customers.region"
              ()
          in
          ignore (Pipeline.exec_oltp p "INSERT INTO customers VALUES (1, 'eu')");
          ignore (Pipeline.exec_oltp p "INSERT INTO sales VALUES (1, 10)");
          ignore (Pipeline.sync p);
          (* simulate divergence: the replica loses a row out of band *)
          ignore (Table.truncate
                    (Catalog.find_table (Database.catalog (Pipeline.olap p)) "sales"));
          p
        in
        let p = make false in
        ignore (Pipeline.exec_oltp p "DELETE FROM sales WHERE amount = 10");
        ignore (Pipeline.sync p);
        Alcotest.(check int) "miss counted" 1
          (Pipeline.stats p).Pipeline.replica_misses;
        let p = make true in
        ignore (Pipeline.exec_oltp p "DELETE FROM sales WHERE amount = 10");
        (match Pipeline.sync p with
         | _ -> Alcotest.fail "strict replica must raise on divergence"
         | exception Error.Sql_error _ -> ()));
    Util.tc "generated trigger DDL mentions the delta table" (fun () ->
        let db = Util.db_with [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)" ] in
        let c =
          Openivm.Compiler.compile ~flags:Openivm.Flags.paper
            (Database.catalog db) view_sql
        in
        match c.Openivm.Compiler.trigger_sql with
        | [ ("groups", sql) ] ->
          Alcotest.(check bool) "mentions delta" true
            (let needle = "INSERT INTO delta_groups" in
             let rec go i =
               i + String.length needle <= String.length sql
               && (String.sub sql i (String.length needle) = needle || go (i + 1))
             in
             go 0)
        | _ -> Alcotest.fail "expected one trigger");
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) bridge_qcheck
