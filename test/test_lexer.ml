open Openivm_sql

let toks src = List.map (fun p -> p.Lexer.tok) (Lexer.tokenize src)

let tok_list = Alcotest.testable
    (fun fmt t -> Format.pp_print_string fmt (Token.to_string t))
    ( = )

let check src expected () =
  Alcotest.(check (list tok_list)) src (expected @ [ Token.Eof ]) (toks src)

let check_fails src () =
  match Lexer.tokenize src with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected lex error for %S" src

let suite =
  [ Util.tc "keywords are case-insensitive"
      (check "SeLeCt FROM where" [ Keyword "select"; Keyword "from"; Keyword "where" ]);
    Util.tc "identifiers lower-cased"
      (check "MyTable" [ Ident "mytable" ]);
    Util.tc "quoted identifiers preserve case"
      (check "\"MyTable\"" [ Quoted_ident "MyTable" ]);
    Util.tc "integer literal" (check "42" [ Int_lit 42 ]);
    Util.tc "float literal" (check "3.25" [ Float_lit 3.25 ]);
    Util.tc "float with exponent" (check "1e3" [ Float_lit 1000.0 ]);
    Util.tc "float trailing dot digits" (check "2.5e2" [ Float_lit 250.0 ]);
    Util.tc "leading-dot float" (check ".5" [ Float_lit 0.5 ]);
    Util.tc "string literal" (check "'hello'" [ String_lit "hello" ]);
    Util.tc "string with escaped quote"
      (check "'it''s'" [ String_lit "it's" ]);
    Util.tc "empty string" (check "''" [ String_lit "" ]);
    Util.tc "operators"
      (check "<> <= >= < > = != ||"
         [ Neq; Le; Ge; Lt; Gt; Eq; Neq; Concat_op ]);
    Util.tc "punctuation"
      (check "( ) , ; . *"
         [ Lparen; Rparen; Comma; Semicolon; Dot; Star ]);
    Util.tc "line comment skipped"
      (check "1 -- comment here\n2" [ Int_lit 1; Int_lit 2 ]);
    Util.tc "block comment skipped"
      (check "1 /* hi */ 2" [ Int_lit 1; Int_lit 2 ]);
    Util.tc "nested block comment"
      (check "1 /* a /* b */ c */ 2" [ Int_lit 1; Int_lit 2 ]);
    Util.tc "arithmetic tokens"
      (check "a+b-c*d/e%f"
         [ Ident "a"; Plus; Ident "b"; Minus; Ident "c"; Star; Ident "d";
           Slash; Ident "e"; Percent; Ident "f" ]);
    Util.tc "qualified name" (check "t.col" [ Ident "t"; Dot; Ident "col" ]);
    Util.tc "unterminated string fails" (check_fails "'abc");
    Util.tc "unterminated block comment fails" (check_fails "/* abc");
    Util.tc "unterminated quoted ident fails" (check_fails "\"abc");
    Util.tc "stray character fails" (check_fails "a $ b");
  ]
