(** Tests for the observability subsystem (lib/obs): span nesting and
    attribution, histogram percentile math, no-op behaviour while
    disabled, and byte-identical renderer output under the injected
    clock, compared against the golden files in [golden/].

    To regenerate the goldens after an intentional format change:

      dune build test/main.exe && cd test && \
        OPENIVM_GOLDEN_PROMOTE=golden ../_build/default/test/main.exe test obs
*)

module Clock = Openivm_obs.Clock
module Span = Openivm_obs.Span
module Metrics = Openivm_obs.Metrics
module Report = Openivm_obs.Report

(** Run [f] with span collection on and a clean slate, restoring the real
    clock and disabled state even when a check fails. *)
let with_obs f () =
  Report.reset_all ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
        Span.set_enabled false;
        Clock.use_defaults ();
        Report.reset_all ())
    f

let fake_clock () =
  Clock.set_now (Clock.ticker ~start:1000.0 ~step:0.0005 ());
  Clock.set_allocated_bytes (Clock.ticker ~start:0.0 ~step:256.0 ())

let names spans = List.map (fun (s : Span.t) -> s.Span.name) spans

(* --- span nesting --- *)

let test_nesting =
  with_obs (fun () ->
      let a = Span.enter "a" in
      let b = Span.enter "b" in
      let c = Span.enter "c" in
      Span.finish c;
      Span.finish b;
      let b2 = Span.enter "b2" in
      Span.finish b2;
      Span.finish a;
      let r2 = Span.enter "root2" in
      Span.finish r2;
      Alcotest.(check (list string)) "start order"
        [ "a"; "b"; "c"; "b2"; "root2" ]
        (names (Span.spans ()));
      Alcotest.(check (list string)) "roots" [ "a"; "root2" ]
        (names (Span.roots ()));
      Alcotest.(check (list string)) "children of a" [ "b"; "b2" ]
        (names (Span.children a));
      Alcotest.(check (list string)) "children of b" [ "c" ]
        (names (Span.children b));
      Alcotest.(check (option int)) "c's parent is b" (Some b.Span.id)
        c.Span.parent;
      Alcotest.(check (option int)) "a is a root" None a.Span.parent)

let test_out_of_order_finish =
  with_obs (fun () ->
      let a = Span.enter "a" in
      let b = Span.enter "b" in
      (* finishing the outer span pops the abandoned inner one off the
         stack: the next span must attribute to nothing, not to [b] *)
      Span.finish a;
      let c = Span.enter "c" in
      Alcotest.(check (option int)) "c is a root" None c.Span.parent;
      Span.finish b;
      Span.finish b;  (* idempotent *)
      Span.finish c;
      Alcotest.(check int) "three spans recorded" 3
        (List.length (Span.spans ())))

let test_disabled_is_noop () =
  Report.reset_all ();
  Alcotest.(check bool) "disabled by default" false (Span.enabled ());
  let s = Span.enter "x" in
  Alcotest.(check bool) "the shared none span" true (s == Span.none);
  Span.set_int s "k" 1;
  Span.finish s;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.spans ()));
  Alcotest.(check int) "none stays attribute-free" 0
    (List.length Span.none.Span.attrs)

let test_with_span_on_exception =
  with_obs (fun () ->
      (try Span.with_span "boom" (fun _ -> failwith "x")
       with Failure _ -> ());
      match Span.find "boom" with
      | None -> Alcotest.fail "span not recorded"
      | Some s -> Alcotest.(check bool) "closed" true s.Span.closed)

let test_injected_clock =
  with_obs (fun () ->
      fake_clock ();
      let a = Span.enter "a" in
      let b = Span.enter "b" in
      Span.finish b;
      Span.finish a;
      (* every Clock.now () call ticks 0.5ms, every allocation read 256B:
         enter and finish each read both sources once *)
      Alcotest.(check (float 1e-12)) "inner duration" 0.0005 b.Span.duration;
      Alcotest.(check (float 1e-12)) "outer duration" 0.0015 a.Span.duration;
      Alcotest.(check (float 1e-9)) "inner allocation" 256.0 b.Span.alloc_bytes;
      Alcotest.(check (float 1e-9)) "outer allocation" 768.0 a.Span.alloc_bytes)

(* --- metrics --- *)

let test_counter_and_reset () =
  Report.reset_all ();
  let c = Metrics.counter "obs_test_total" ~labels:[ ("k", "v") ] in
  Metrics.incr c;
  Metrics.add c 9;
  Alcotest.(check int) "counted" 10 (Metrics.counter_value c);
  Alcotest.(check int) "same (name, labels) = same handle" 10
    (Metrics.counter_value (Metrics.counter "obs_test_total" ~labels:[ ("k", "v") ]));
  Metrics.reset_values ();
  Alcotest.(check int) "reset zeroes, handle stays valid" 0
    (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "still usable after reset" 1 (Metrics.counter_value c);
  Report.reset_all ()

let test_kind_mismatch () =
  Report.reset_all ();
  ignore (Metrics.counter "obs_test_kind");
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument
       "metric \"obs_test_kind\" already registered with another kind")
    (fun () -> ignore (Metrics.gauge "obs_test_kind"));
  Report.reset_all ()

let test_percentiles () =
  Report.reset_all ();
  let h = Metrics.histogram "obs_test_seconds" in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Metrics.percentile h 0.5));
  Metrics.observe h 0.003;
  Alcotest.(check (float 1e-12)) "single value: every percentile is it"
    0.003 (Metrics.percentile h 0.9);
  Metrics.reset_values ();
  List.iter (Metrics.observe h)
    [ 2e-6; 3e-6; 5e-6; 9e-6; 2e-5; 6e-5; 2e-4; 1e-3 ];
  Alcotest.(check int) "count" 8 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 0.001299 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-12)) "p0 clamps to the observed min" 2e-6
    (Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-12)) "p100 clamps to the observed max" 1e-3
    (Metrics.percentile h 1.0);
  let p50 = Metrics.percentile h 0.5 and p90 = Metrics.percentile h 0.9 in
  Alcotest.(check bool) "p50 within range" true (p50 >= 2e-6 && p50 <= 1e-3);
  Alcotest.(check bool) "percentiles are monotone" true (p50 <= p90);
  (* p50: rank 4 falls in the [4us, 8us) bucket holding the 4th
     observation (5e-6 and 9e-6 span two buckets; 2,3 fill [2,4)) *)
  Alcotest.(check bool) "p50 near the middle observations" true
    (p50 >= 4e-6 && p50 <= 1.6e-5);
  Report.reset_all ()

(* regression: an empty histogram has vmin = +inf / vmax = -inf; the
   percentile clamp must not leak those as ±infinity, fresh or after
   reset_values wipes a used histogram back to empty *)
let test_empty_percentile_guard () =
  Report.reset_all ();
  let h = Metrics.histogram "obs_test_empty_seconds" in
  List.iter
    (fun p ->
       Alcotest.(check bool)
         (Printf.sprintf "fresh p%g is nan, not inf" (100.0 *. p)) true
         (Float.is_nan (Metrics.percentile h p)))
    [ 0.0; 0.5; 0.99; 1.0 ];
  Metrics.observe h 0.003;
  Metrics.reset_values ();
  List.iter
    (fun p ->
       Alcotest.(check bool)
         (Printf.sprintf "post-reset p%g is nan, not inf" (100.0 *. p)) true
         (Float.is_nan (Metrics.percentile h p)))
    [ 0.0; 0.5; 1.0 ];
  Report.reset_all ()

(* regression: nan/±inf have no JSON literal — the renderer must map
   them to null rather than emit "nan"/"inf" and corrupt the line *)
let test_json_non_finite () =
  Report.reset_all ();
  Metrics.set_gauge (Metrics.gauge "obs_test_nan_gauge") Float.nan;
  Metrics.set_gauge (Metrics.gauge "obs_test_inf_gauge") Float.infinity;
  let out = Report.render `Json in
  let contains needle =
    let n = String.length needle and l = String.length out in
    let rec go i = i + n <= l && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no bare nan" false (contains ":nan");
  Alcotest.(check bool) "no bare inf" false (contains ":inf");
  Alcotest.(check bool) "null substituted" true (contains "\"value\":null");
  Report.reset_all ()

(* --- golden reports under the injected clock --- *)

(** A fixed scenario covering every renderer feature: nested spans with
    attributes of all three value kinds, a labelled counter, a gauge and
    a histogram. *)
let golden_scenario () =
  fake_clock ();
  Span.with_span "refresh"
    ~attrs:[ ("view", Span.Str "q"); ("strategy", Span.Str "upsert_linear") ]
    (fun sp ->
       Span.with_span "propagate.fill" (fun s ->
           Span.set_int s "rows_written" 42);
       Span.with_span "propagate.combine" (fun s ->
           Span.set_int s "rows_written" 17;
           Span.set_float s "selectivity" 0.25);
       Span.set_int sp "pending_deltas" 59);
  Span.with_span "query" (fun _ -> ());
  let c =
    Metrics.counter "obs_demo_rows_total" ~help:"demo rows"
      ~labels:[ ("kind", "insert") ]
  in
  Metrics.add c 123;
  let g = Metrics.gauge "obs_demo_depth" ~help:"demo gauge" in
  Metrics.set_gauge g 3.0;
  let h = Metrics.histogram "obs_demo_seconds" ~help:"demo latencies" in
  List.iter (Metrics.observe h) [ 2e-6; 3e-6; 5e-6; 9e-6; 2e-5; 1e-3 ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name actual =
  (match Sys.getenv_opt "OPENIVM_GOLDEN_PROMOTE" with
   | Some dir ->
     let oc = open_out_bin (Filename.concat dir name) in
     output_string oc actual;
     close_out oc
   | None -> ());
  let path = Filename.concat "golden" name in
  if not (Sys.file_exists path) then
    Alcotest.fail
      (Printf.sprintf
         "golden file %s missing — regenerate with OPENIVM_GOLDEN_PROMOTE \
          (see the header of test_obs.ml)"
         path)
  else Alcotest.(check string) name (read_file path) actual

(* --- spans under domain parallelism --- *)

let test_spans_across_domains =
  with_obs (fun () ->
      let root = Span.enter "root" in
      let worker i () =
        let s = Span.enter (Printf.sprintf "worker%d" i) in
        Span.finish s
      in
      let domains = List.init 3 (fun i -> Domain.spawn (worker i)) in
      List.iter Domain.join domains;
      Span.finish root;
      let spans = Span.spans () in
      Alcotest.(check int) "all spans recorded" 4 (List.length spans);
      let ids = List.map (fun (s : Span.t) -> s.Span.id) spans in
      Alcotest.(check int) "ids unique" 4
        (List.length (List.sort_uniq compare ids));
      List.iter
        (fun (s : Span.t) ->
           if s.Span.name <> "root" then
             (* each worker's stack is domain-local, so "root" (open on the
                main domain) must not become its parent *)
             Alcotest.(check (option int))
               (s.Span.name ^ " has no cross-domain parent") None
               s.Span.parent)
        spans)

let test_golden_text =
  with_obs (fun () ->
      golden_scenario ();
      check_golden "obs_report.txt" (Report.render `Text))

let test_golden_jsonl =
  with_obs (fun () ->
      golden_scenario ();
      check_golden "obs_report.jsonl" (Report.render `Json))

let test_golden_prometheus =
  with_obs (fun () ->
      golden_scenario ();
      check_golden "obs_report.prom" (Report.render `Prometheus))

(* --- integration: the instrumented runner produces the span taxonomy --- *)

let test_runner_spans =
  with_obs (fun () ->
      let db = Util.db_with [ "CREATE TABLE t(k VARCHAR, v INTEGER)" ] in
      Util.exec db "INSERT INTO t VALUES ('a', 1), ('b', 2)";
      let v =
        Openivm.Runner.install db
          "CREATE MATERIALIZED VIEW tv AS SELECT k, SUM(v) AS s FROM t \
           GROUP BY k"
      in
      Util.exec db "INSERT INTO t VALUES ('a', 3)";
      Openivm.Runner.force_refresh v;
      (match Span.find "install" with
       | None -> Alcotest.fail "no install span"
       | Some s ->
         Alcotest.(check (list string)) "install children"
           [ "compile"; "setup_ddl"; "initial_load" ]
           (names (Span.children s)));
      (match Span.find "refresh" with
       | None -> Alcotest.fail "no refresh span"
       | Some s ->
         Alcotest.(check (list string)) "propagation steps"
           [ "propagate.fill"; "propagate.combine"; "propagate.prune";
             "propagate.cleanup" ]
           (names (Span.children s));
         Alcotest.(check bool) "strategy attribute" true
           (List.mem_assoc "strategy" s.Span.attrs);
         (match Span.children s with
          | fill :: _ ->
            (match List.assoc_opt "rows_written" fill.Span.attrs with
             | Some (Span.Int n) ->
               Alcotest.(check bool) "fill wrote the delta" true (n >= 1)
             | _ -> Alcotest.fail "fill has no rows_written attribute")
          | [] -> ()));
      Alcotest.(check bool) "refresh counter incremented" true
        (Metrics.counter_value
           (Metrics.counter "openivm_refresh_total"
              ~labels:[ ("strategy", "upsert_linear") ])
         >= 1))

let test_disabled_records_nothing () =
  Report.reset_all ();
  let db = Util.db_with [ "CREATE TABLE t(k VARCHAR, v INTEGER)" ] in
  let v =
    Openivm.Runner.install db
      "CREATE MATERIALIZED VIEW tv AS SELECT k, SUM(v) AS s FROM t GROUP BY k"
  in
  Util.exec db "INSERT INTO t VALUES ('a', 1)";
  Openivm.Runner.force_refresh v;
  Alcotest.(check int) "no spans while disabled" 0
    (List.length (Span.spans ()));
  Util.check_view_consistent db v;
  Report.reset_all ()

let suite =
  [ Util.tc "spans nest and attribute to the innermost open span" test_nesting;
    Util.tc "out-of-order finish pops abandoned spans" test_out_of_order_finish;
    Util.tc "disabled: the shared none span records nothing"
      test_disabled_is_noop;
    Util.tc "with_span closes on exception" test_with_span_on_exception;
    Util.tc "durations come from the injected clock" test_injected_clock;
    Util.tc "counters: labels, shared handles, reset keeps registration"
      test_counter_and_reset;
    Util.tc "kind mismatch on a registered name raises" test_kind_mismatch;
    Util.tc "histogram percentile interpolation and clamping"
      test_percentiles;
    Util.tc "empty histogram percentiles stay nan, fresh and after reset"
      test_empty_percentile_guard;
    Util.tc "JSON renderer maps non-finite values to null"
      test_json_non_finite;
    Util.tc "spans record safely from spawned domains"
      test_spans_across_domains;
    Util.tc "text report matches golden under injected clock"
      test_golden_text;
    Util.tc "JSON lines report matches golden" test_golden_jsonl;
    Util.tc "Prometheus exposition matches golden" test_golden_prometheus;
    Util.tc "runner refresh emits the documented span taxonomy"
      test_runner_spans;
    Util.tc "tracing off: refresh records no spans and stays correct"
      test_disabled_records_nothing ]
