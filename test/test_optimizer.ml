open Openivm_engine

let plan_of db sql =
  match Database.exec db ("EXPLAIN " ^ sql) with
  | Database.Ok_msg plan -> plan
  | _ -> Alcotest.fail "expected plan"

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let db () =
  Util.db_with
    [ "CREATE TABLE t(k VARCHAR, v INTEGER)";
      "CREATE TABLE u(k VARCHAR, w INTEGER)";
      "INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)";
      "INSERT INTO u VALUES ('a', 10), ('b', 20)" ]

(* run a query with and without the optimizer; results must agree *)
let optimizer_preserves db sql =
  let with_opt = Util.sorted_rows db sql in
  db.Database.optimizer_enabled <- false;
  let without = Util.sorted_rows db sql in
  db.Database.optimizer_enabled <- true;
  Alcotest.(check (list string)) sql without with_opt

let suite =
  [ Util.tc "constant folding removes tautologies" (fun () ->
        let d = db () in
        let plan = plan_of d "SELECT k FROM t WHERE 1 = 1 AND v > 1" in
        Alcotest.(check bool) "no TRUE left" false (contains plan "TRUE");
        Alcotest.(check bool) "kept real filter" true (contains plan "v > 1"));
    Util.tc "contradictions become an empty input" (fun () ->
        let d = db () in
        let plan = plan_of d "SELECT k FROM t WHERE 1 = 2" in
        Alcotest.(check bool) "empty materialized" true
          (contains plan "MATERIALIZED(empty)"));
    Util.tc "filter pushed below projection" (fun () ->
        let d = db () in
        let plan =
          plan_of d "SELECT * FROM (SELECT k, v + 1 AS v1 FROM t) AS s WHERE s.v1 > 2"
        in
        (* the filter must sit below the projection, rewritten to v + 1 > 2 *)
        Alcotest.(check bool) "substituted" true (contains plan "v + 1 > 2"));
    Util.tc "filter pushed to join sides" (fun () ->
        let d = db () in
        let plan =
          plan_of d
            "SELECT t.k FROM t JOIN u ON t.k = u.k WHERE t.v > 1 AND u.w < 50"
        in
        (* both conjuncts leave the top: no FILTER above the join *)
        let lines = String.split_on_char '\n' plan in
        (match lines with
         | first :: _ ->
           Alcotest.(check bool) "join or project on top" false
             (contains first "FILTER")
         | [] -> Alcotest.fail "empty plan"));
    Util.tc "cross product with equality becomes a join" (fun () ->
        let d = db () in
        let plan = plan_of d "SELECT t.v FROM t, u WHERE t.k = u.k" in
        Alcotest.(check bool) "inner join" true (contains plan "HASH_JOIN(INNER)"));
    Util.tc "projection collapse" (fun () ->
        let d = db () in
        let plan =
          plan_of d "SELECT x + 1 AS y FROM (SELECT v AS x FROM t) AS s"
        in
        (* one PROJECT over the scan, not two *)
        let count_projects =
          List.length
            (List.filter (fun l -> contains l "PROJECT")
               (String.split_on_char '\n' plan))
        in
        Alcotest.(check int) "single project" 1 count_projects);
    Util.tc "optimizer preserves results (joins)" (fun () ->
        optimizer_preserves (db ())
          "SELECT t.k, u.w FROM t JOIN u ON t.k = u.k WHERE t.v >= 1 AND u.w > 5");
    Util.tc "optimizer preserves results (cross + filter)" (fun () ->
        optimizer_preserves (db ())
          "SELECT t.k FROM t, u WHERE t.k = u.k AND t.v + u.w > 10");
    Util.tc "optimizer preserves results (union pushdown)" (fun () ->
        optimizer_preserves (db ())
          "SELECT * FROM (SELECT k, v FROM t UNION ALL SELECT k, w FROM u) \
           AS q WHERE q.v > 1");
    Util.tc "optimizer preserves results (aggregates)" (fun () ->
        optimizer_preserves (db ())
          "SELECT k, SUM(v) FROM t WHERE v > 0 AND 2 > 1 GROUP BY k HAVING \
           COUNT(*) > 0");
  ]

let index_suite =
  [ Util.tc "equality on an indexed column becomes an index scan" (fun () ->
        let d =
          Util.db_with
            [ "CREATE TABLE t(k VARCHAR, v INTEGER)";
              "CREATE INDEX idx_k ON t(k)";
              "INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3)" ]
        in
        let plan = plan_of d "SELECT v FROM t WHERE k = 'a'" in
        Alcotest.(check bool) "index scan" true (contains plan "INDEX_SCAN");
        Util.check_rows d "SELECT v FROM t WHERE k = 'a'" [ "(1)"; "(3)" ]);
    Util.tc "pk equality becomes a primary key lookup" (fun () ->
        let d =
          Util.db_with
            [ "CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER)";
              "INSERT INTO t VALUES (1, 10), (2, 20)" ]
        in
        let plan = plan_of d "SELECT v FROM t WHERE id = 2" in
        Alcotest.(check bool) "pk scan" true (contains plan "PRIMARY KEY");
        Util.check_rows d "SELECT v FROM t WHERE id = 2" [ "(20)" ]);
    Util.tc "residual predicates stay above the index scan" (fun () ->
        let d =
          Util.db_with
            [ "CREATE TABLE t(k VARCHAR, v INTEGER)";
              "CREATE INDEX idx_k ON t(k)";
              "INSERT INTO t VALUES ('a', 1), ('a', 2), ('a', 3)" ]
        in
        Util.check_rows d "SELECT v FROM t WHERE k = 'a' AND v > 1"
          [ "(2)"; "(3)" ]);
    Util.tc "composite index requires all columns pinned" (fun () ->
        let d =
          Util.db_with
            [ "CREATE TABLE t(a INTEGER, b INTEGER, v INTEGER)";
              "CREATE INDEX idx_ab ON t(a, b)";
              "INSERT INTO t VALUES (1, 1, 10), (1, 2, 20), (2, 1, 30)" ]
        in
        let partial = plan_of d "SELECT v FROM t WHERE a = 1" in
        Alcotest.(check bool) "no index scan on prefix" false
          (contains partial "INDEX_SCAN");
        let full = plan_of d "SELECT v FROM t WHERE a = 1 AND b = 2" in
        Alcotest.(check bool) "index scan when fully pinned" true
          (contains full "INDEX_SCAN");
        Util.check_rows d "SELECT v FROM t WHERE a = 1 AND b = 2" [ "(20)" ]);
    Util.tc "index scan stays correct through dml" (fun () ->
        let d =
          Util.db_with
            [ "CREATE TABLE t(k VARCHAR, v INTEGER)";
              "CREATE INDEX idx_k ON t(k)";
              "INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3)" ]
        in
        Util.exec d "UPDATE t SET v = v * 10 WHERE k = 'a' AND v = 1";
        Util.exec d "DELETE FROM t WHERE k = 'a' AND v = 3";
        Util.exec d "INSERT INTO t VALUES ('a', 99)";
        Util.check_rows d "SELECT v FROM t WHERE k = 'a'" [ "(10)"; "(99)" ];
        Util.check_rows d "SELECT v FROM t WHERE k = 'b'" [ "(2)" ]);
    Util.tc "indexed dml matches unindexed dml" (fun () ->
        let setup stmts = Util.db_with stmts in
        let stmts_base =
          [ "CREATE TABLE t(k VARCHAR, v INTEGER)";
            "INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3), ('c', 4), ('a', 5)" ]
        in
        let with_idx = setup (stmts_base @ [ "CREATE INDEX idx_k ON t(k)" ]) in
        let without = setup stmts_base in
        List.iter
          (fun sql -> Util.exec with_idx sql; Util.exec without sql)
          [ "UPDATE t SET v = v + 100 WHERE k = 'a' AND v % 2 = 1";
            "DELETE FROM t WHERE k = 'a' AND v > 102";
            "UPDATE t SET k = 'z' WHERE k = 'b'" ];
        Alcotest.(check (list string)) "same contents"
          (Util.sorted_rows without "SELECT * FROM t")
          (Util.sorted_rows with_idx "SELECT * FROM t"));
  ]

let suite = suite @ index_suite

(* index nested-loop joins must agree with hash joins on every join kind *)
let inlj_suite =
  let setup ~indexed =
    let stmts =
      [ "CREATE TABLE big(id INTEGER, grp INTEGER, v INTEGER)";
        "CREATE TABLE small(id INTEGER, w INTEGER)" ]
      @ (if indexed then
           [ "CREATE INDEX idx_big_id ON big(id)";
             "CREATE INDEX idx_big_grp ON big(grp)" ]
         else [])
    in
    let d = Util.db_with stmts in
    (* 300 big rows, 5 small rows: the probe heuristic triggers *)
    let tbl = Catalog.find_table (Database.catalog d) "big" in
    Trigger.without_hooks (Database.triggers d) (fun () ->
        for i = 0 to 299 do
          Table.insert tbl
            [| Value.Int (i mod 50); Value.Int (i mod 7); Value.Int i |]
        done);
    Util.exec d
      "INSERT INTO small VALUES (1, 10), (3, 30), (3, 31), (999, -1), (NULL, 0)";
    d
  in
  let agree name sql =
    Util.tc name (fun () ->
        Alcotest.(check (list string)) "indexed = unindexed"
          (Util.sorted_rows (setup ~indexed:false) sql)
          (Util.sorted_rows (setup ~indexed:true) sql))
  in
  [ agree "inlj inner join agrees"
      "SELECT small.w, big.v FROM small JOIN big ON small.id = big.id";
    agree "inlj inner join (reversed sides) agrees"
      "SELECT small.w, big.v FROM big JOIN small ON small.id = big.id";
    agree "inlj left outer keeps unmatched probe rows"
      "SELECT small.w, big.v FROM small LEFT JOIN big ON small.id = big.id";
    agree "inlj right outer (index on the left input)"
      "SELECT small.w, big.v FROM big RIGHT JOIN small ON small.id = big.id";
    agree "inlj with residual predicate"
      "SELECT small.w, big.v FROM small JOIN big ON small.id = big.id AND \
       big.v % 2 = 0";
    agree "inlj under aggregation"
      "SELECT small.id, COUNT(*), SUM(big.v) FROM small JOIN big ON \
       small.id = big.grp GROUP BY small.id";
  ]

let suite = suite @ inlj_suite
