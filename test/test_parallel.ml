(** Domain-parallel refresh (Flags.domains > 1): every configuration must
    produce results identical to sequential propagation and to full
    recomputation — parallelism is an execution strategy, never a
    semantics change. Covers partitioned fill over joins, the
    group-partitioned stage fill of the swap strategies, skewed and
    tiny deltas (empty shards / fallback paths), and the level-parallel
    cascade tick. *)

open Openivm_engine
module Runner = Openivm.Runner
module Flags = Openivm.Flags

(* exercise real cross-domain execution even on single-core CI hosts *)
let () = Openivm.Parallel.oversubscribe := true

let base_ddl =
  [ "CREATE TABLE sales(region VARCHAR, product VARCHAR, amount INTEGER)";
    "CREATE TABLE products(product VARCHAR, category VARCHAR)" ]

let seed_rows db ~rows =
  for i = 1 to rows do
    Util.exec db
      (Printf.sprintf
         "INSERT INTO sales VALUES ('r%d', 'p%d', %d)"
         (i mod 7) (i mod 13) (i * 3 mod 101))
  done;
  for i = 0 to 12 do
    Util.exec db
      (Printf.sprintf "INSERT INTO products VALUES ('p%d', 'c%d')" i (i mod 3))
  done

let churn db ~rows =
  for i = 1 to rows do
    Util.exec db
      (Printf.sprintf
         "INSERT INTO sales VALUES ('r%d', 'p%d', %d)"
         (i mod 5) (i mod 11) (i * 7 mod 53))
  done;
  Util.exec db "DELETE FROM sales WHERE amount > 90";
  Util.exec db "UPDATE sales SET amount = amount + 1 WHERE region = 'r1'"

(** Install [sql] under [strategy] × [domains], seed, churn, refresh, and
    return the view's visible rows (the oracle compares runs). *)
let run_once ~strategy ~domains ~rows sql =
  let db = Util.db_with base_ddl in
  seed_rows db ~rows;
  let flags = { Flags.default with Flags.strategy; domains } in
  let v = Runner.install ~flags db sql in
  churn db ~rows;
  Runner.force_refresh v;
  Util.check_view_consistent ~msg:"parallel view = recompute" db v;
  Runner.visible_rows v

let check_domains_equal ?(rows = 120) ~strategy sql =
  let seq = run_once ~strategy ~domains:1 ~rows sql in
  List.iter
    (fun domains ->
       Alcotest.(check (list string))
         (Printf.sprintf "domains=%d matches domains=1" domains)
         seq
         (run_once ~strategy ~domains ~rows sql))
    [ 2; 4 ]

let group_view =
  "CREATE MATERIALIZED VIEW v AS SELECT region, SUM(amount) AS total, \
   COUNT(*) AS n FROM sales GROUP BY region"

let join_view =
  "CREATE MATERIALIZED VIEW v AS SELECT p.category, SUM(s.amount) AS total \
   FROM sales s JOIN products p ON s.product = p.product GROUP BY p.category"

let minmax_view =
  "CREATE MATERIALIZED VIEW v AS SELECT region, MIN(amount) AS lo, \
   MAX(amount) AS hi FROM sales GROUP BY region"

let test_strategies () =
  List.iter
    (fun strategy ->
       check_domains_equal ~strategy group_view;
       check_domains_equal ~strategy join_view)
    [ Flags.Upsert_linear; Flags.Union_regroup; Flags.Outer_join_merge;
      Flags.Rederive_affected; Flags.Full_recompute ]

let test_minmax () =
  (* MIN/MAX routes to rederive regardless of the requested strategy *)
  List.iter
    (fun strategy -> check_domains_equal ~strategy minmax_view)
    [ Flags.Union_regroup; Flags.Rederive_affected ]

let test_tiny_delta () =
  (* fewer delta rows than shards: the fill falls back to sequential,
     results must not change *)
  List.iter
    (fun strategy -> check_domains_equal ~rows:2 ~strategy group_view)
    [ Flags.Upsert_linear; Flags.Union_regroup; Flags.Outer_join_merge ]

let test_skewed_keys () =
  (* every row in one group: group-partitioned combine leaves all but one
     shard empty, which must be harmless *)
  let run domains =
    let db = Util.db_with base_ddl in
    for i = 1 to 150 do
      Util.exec db
        (Printf.sprintf "INSERT INTO sales VALUES ('only', 'p1', %d)" i)
    done;
    let flags =
      { Flags.default with Flags.strategy = Flags.Union_regroup; domains }
    in
    let v = Runner.install ~flags db group_view in
    for i = 1 to 80 do
      Util.exec db
        (Printf.sprintf "INSERT INTO sales VALUES ('only', 'p2', %d)" i)
    done;
    Runner.force_refresh v;
    Util.check_view_consistent ~msg:"skewed view = recompute" db v;
    Runner.visible_rows v
  in
  Alcotest.(check (list string)) "skewed: domains=4 matches domains=1"
    (run 1) (run 4)

(** Same-level cascade: two independent level-0 views plus a level-1 view
    over both, refreshed through the tick — the level-parallel driver
    refreshes the level-0 pair concurrently. *)
let cascade_tick domains =
  let db = Util.db_with base_ddl in
  seed_rows db ~rows:100;
  let flags = { Flags.default with Flags.domains } in
  let ext = Runner.load ~flags db in
  let install sql =
    match Runner.exec_ext ext sql with
    | `Installed v -> v
    | `Result _ -> Alcotest.fail "expected a view install"
  in
  let a =
    install
      "CREATE MATERIALIZED VIEW by_region AS SELECT region, SUM(amount) AS \
       total FROM sales GROUP BY region"
  in
  let b =
    install
      "CREATE MATERIALIZED VIEW by_product AS SELECT product, COUNT(*) AS n \
       FROM sales GROUP BY product"
  in
  let c =
    install
      "CREATE MATERIALIZED VIEW big_regions AS SELECT region, total FROM \
       by_region WHERE total > 50"
  in
  churn db ~rows:90;
  let ran = Runner.refresh_tick ext in
  Alcotest.(check bool) "tick refreshed views" true (ran >= 1);
  List.iter (Util.check_view_consistent ~msg:"cascade view = recompute" db)
    [ a; b; c ];
  (Runner.visible_rows a, Runner.visible_rows b, Runner.visible_rows c)

let test_cascade_tick () =
  let a1, b1, c1 = cascade_tick 1 in
  List.iter
    (fun domains ->
       let a, b, c = cascade_tick domains in
       Alcotest.(check (list string)) "level-0 view a equal" a1 a;
       Alcotest.(check (list string)) "level-0 view b equal" b1 b;
       Alcotest.(check (list string)) "level-1 view c equal" c1 c)
    [ 2; 4 ]

let test_repeated_ticks () =
  (* shard tables are created and dropped per refresh: repeated parallel
     ticks must not leak catalog entries or stale contents *)
  let db = Util.db_with base_ddl in
  seed_rows db ~rows:80;
  let flags =
    { Flags.default with
      Flags.domains = 2; strategy = Flags.Union_regroup }
  in
  let ext = Runner.load ~flags db in
  let v =
    match Runner.exec_ext ext group_view with
    | `Installed v -> v
    | `Result _ -> Alcotest.fail "expected a view install"
  in
  let tables_before = Catalog.table_names (Database.catalog db) in
  for round = 1 to 4 do
    for i = 1 to 40 do
      Util.exec db
        (Printf.sprintf "INSERT INTO sales VALUES ('r%d', 'p%d', %d)"
           (i mod 3) (i mod 5) (round * i mod 97))
    done;
    ignore (Runner.refresh_tick ext);
    Util.check_view_consistent ~msg:"round view = recompute" db v
  done;
  Alcotest.(check (list string)) "no shard tables leaked"
    tables_before
    (Catalog.table_names (Database.catalog db))

let test_eager_mixed () =
  (* an eager downstream over a lazy upstream under the parallel tick *)
  let run domains =
    let db = Util.db_with base_ddl in
    seed_rows db ~rows:60;
    let flags = { Flags.default with Flags.domains } in
    let ext = Runner.load ~flags db in
    let install sql =
      match Runner.exec_ext ext sql with
      | `Installed v -> v
      | `Result _ -> Alcotest.fail "expected a view install"
    in
    let up =
      install
        "CREATE MATERIALIZED VIEW by_region AS SELECT region, SUM(amount) \
         AS total FROM sales GROUP BY region"
    in
    let down =
      Runner.install
        ~flags:{ flags with Flags.refresh = Flags.Eager }
        ~registry:[ up ] db
        "CREATE MATERIALIZED VIEW loud AS SELECT region, total FROM \
         by_region WHERE total >= 0"
    in
    ext.Runner.ext_views <- down :: ext.Runner.ext_views;
    churn db ~rows:50;
    ignore (Runner.refresh_tick ext);
    Util.check_view_consistent ~msg:"eager downstream consistent" db down;
    (Runner.visible_rows up, Runner.visible_rows down)
  in
  let u1, d1 = run 1 in
  let u2, d2 = run 2 in
  Alcotest.(check (list string)) "upstream equal" u1 u2;
  Alcotest.(check (list string)) "eager downstream equal" d1 d2

let suite =
  [ Util.tc "all strategies: 1/2/4 domains agree (group + join views)"
      test_strategies;
    Util.tc "min/max (rederive route): domains agree" test_minmax;
    Util.tc "delta smaller than shard count falls back cleanly"
      test_tiny_delta;
    Util.tc "skewed keys: empty shards are harmless" test_skewed_keys;
    Util.tc "level-parallel cascade tick matches sequential"
      test_cascade_tick;
    Util.tc "repeated parallel ticks leak no shard tables"
      test_repeated_ticks;
    Util.tc "eager downstream over lazy upstream under parallel tick"
      test_eager_mixed ]
