open Openivm_sql

let parse = Parser.parse_statement
let parse_expr = Parser.parse_expression

let check_roundtrip sql () =
  (* parse -> print -> parse must be a fixpoint of printing *)
  let s1 = parse sql in
  let printed1 = Pretty.stmt_to_sql Dialect.duckdb s1 in
  let s2 = parse printed1 in
  let printed2 = Pretty.stmt_to_sql Dialect.duckdb s2 in
  Alcotest.(check string) sql printed1 printed2

let check_expr sql expected () =
  Alcotest.(check bool)
    (Printf.sprintf "parse %S" sql)
    true
    (parse_expr sql = expected)

let check_rejects sql () =
  match parse sql with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected parse error for %S" sql

let select_of sql =
  match parse sql with
  | Ast.Select_stmt s -> s
  | _ -> Alcotest.fail "expected SELECT"

let suite =
  [ Util.tc "precedence: OR binds loosest"
      (check_expr "a = 1 AND b = 2 OR c = 3"
         Ast.(Binary (Or,
                      Binary (And,
                              Binary (Eq, Column (None, "a"), Lit (L_int 1)),
                              Binary (Eq, Column (None, "b"), Lit (L_int 2))),
                      Binary (Eq, Column (None, "c"), Lit (L_int 3)))));
    Util.tc "precedence: mul over add"
      (check_expr "1 + 2 * 3"
         Ast.(Binary (Add, Lit (L_int 1),
                      Binary (Mul, Lit (L_int 2), Lit (L_int 3)))));
    Util.tc "unary minus"
      (check_expr "-x + 1"
         Ast.(Binary (Add, Unary (Neg, Column (None, "x")), Lit (L_int 1))));
    Util.tc "NOT applies to comparison"
      (check_expr "NOT a = 1"
         Ast.(Unary (Not, Binary (Eq, Column (None, "a"), Lit (L_int 1)))));
    Util.tc "BETWEEN"
      (check_expr "x BETWEEN 1 AND 3"
         Ast.(Between (Column (None, "x"), Lit (L_int 1), Lit (L_int 3), false)));
    Util.tc "NOT IN list"
      (check_expr "x NOT IN (1, 2)"
         Ast.(In_list (Column (None, "x"), [ Lit (L_int 1); Lit (L_int 2) ], true)));
    Util.tc "IS NOT NULL"
      (check_expr "x IS NOT NULL" Ast.(Is_null (Column (None, "x"), true)));
    Util.tc "CASE with ELSE"
      (check_expr "CASE WHEN a THEN 1 ELSE 2 END"
         Ast.(Case ([ (Column (None, "a"), Lit (L_int 1)) ], Some (Lit (L_int 2)))));
    Util.tc "COUNT star"
      (check_expr "COUNT(*)" Ast.(Aggregate (Count, false, None)));
    Util.tc "SUM DISTINCT"
      (check_expr "SUM(DISTINCT x)"
         Ast.(Aggregate (Sum, true, Some (Column (None, "x")))));
    Util.tc "CAST"
      (check_expr "CAST(x AS VARCHAR)"
         Ast.(Cast (Column (None, "x"), T_text)));
    Util.tc "qualified star parses" (fun () ->
        let s = select_of "SELECT t.* FROM t" in
        Alcotest.(check int) "one projection" 1 (List.length s.Ast.projections));
    Util.tc "IN subquery" (fun () ->
        match parse_expr "x IN (SELECT y FROM t)" with
        | Ast.In_select (_, _, false) -> ()
        | _ -> Alcotest.fail "expected In_select");
    Util.tc "group by and having" (fun () ->
        let s =
          select_of
            "SELECT k, SUM(v) FROM t GROUP BY k HAVING SUM(v) > 10"
        in
        Alcotest.(check int) "groups" 1 (List.length s.Ast.group_by);
        Alcotest.(check bool) "has having" true (s.Ast.having <> None));
    Util.tc "order by desc limit offset" (fun () ->
        let s = select_of "SELECT a FROM t ORDER BY a DESC LIMIT 5 OFFSET 2" in
        (match s.Ast.order_by with
         | [ { Ast.descending = true; _ } ] -> ()
         | _ -> Alcotest.fail "order");
        Alcotest.(check (option int)) "limit" (Some 5) s.Ast.limit;
        Alcotest.(check (option int)) "offset" (Some 2) s.Ast.offset);
    Util.tc "chained set ops are right-nested" (fun () ->
        let s = select_of "SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM w" in
        match s.Ast.set_operation with
        | Some (Ast.Union, rhs) ->
          (match rhs.Ast.set_operation with
           | Some (Ast.Except, _) -> ()
           | _ -> Alcotest.fail "inner op")
        | _ -> Alcotest.fail "outer op");
    Util.tc "join kinds" (fun () ->
        let s =
          select_of
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x FULL JOIN c ON \
             b.y = c.y"
        in
        match s.Ast.from with
        | Some (Ast.Join (Ast.Join (_, Ast.Left_outer, _, _), Ast.Full_outer, _, _)) -> ()
        | _ -> Alcotest.fail "join tree");
    Util.tc "cross join via comma" (fun () ->
        let s = select_of "SELECT * FROM a, b" in
        match s.Ast.from with
        | Some (Ast.Join (_, Ast.Cross, _, None)) -> ()
        | _ -> Alcotest.fail "comma join");
    Util.tc "WITH cte" (fun () ->
        let s = select_of "WITH c AS (SELECT 1 AS one) SELECT one FROM c" in
        Alcotest.(check int) "ctes" 1 (List.length s.Ast.ctes));
    Util.tc "create table with pk" (fun () ->
        match parse "CREATE TABLE t(a INTEGER PRIMARY KEY, b VARCHAR NOT NULL)" with
        | Ast.Create_table { primary_key = [ "a" ]; columns; _ } ->
          Alcotest.(check int) "cols" 2 (List.length columns)
        | _ -> Alcotest.fail "create table");
    Util.tc "create table with table-level pk" (fun () ->
        match parse "CREATE TABLE t(a INTEGER, b INTEGER, PRIMARY KEY (a, b))" with
        | Ast.Create_table { primary_key = [ "a"; "b" ]; _ } -> ()
        | _ -> Alcotest.fail "table-level pk");
    Util.tc "create materialized view" (fun () ->
        match parse "CREATE MATERIALIZED VIEW v AS SELECT 1 AS x" with
        | Ast.Create_view { materialized = true; view = "v"; _ } -> ()
        | _ -> Alcotest.fail "materialized view");
    Util.tc "insert or replace" (fun () ->
        match parse "INSERT OR REPLACE INTO t VALUES (1, 2)" with
        | Ast.Insert { on_conflict = Ast.Or_replace; _ } -> ()
        | _ -> Alcotest.fail "insert or replace");
    Util.tc "insert from select with columns" (fun () ->
        match parse "INSERT INTO t (a, b) SELECT a, b FROM u" with
        | Ast.Insert { columns = [ "a"; "b" ]; source = Ast.Query _; _ } -> ()
        | _ -> Alcotest.fail "insert select");
    Util.tc "on conflict do nothing" (fun () ->
        match parse "INSERT INTO t VALUES (1) ON CONFLICT DO NOTHING" with
        | Ast.Insert { on_conflict = Ast.Do_nothing; _ } -> ()
        | _ -> Alcotest.fail "do nothing");
    Util.tc "update with where" (fun () ->
        match parse "UPDATE t SET a = a + 1, b = 0 WHERE c > 2" with
        | Ast.Update { assignments; where = Some _; _ } ->
          Alcotest.(check int) "assignments" 2 (List.length assignments)
        | _ -> Alcotest.fail "update");
    Util.tc "delete without where" (fun () ->
        match parse "DELETE FROM t" with
        | Ast.Delete { where = None; _ } -> ()
        | _ -> Alcotest.fail "delete");
    Util.tc "drop if exists" (fun () ->
        match parse "DROP TABLE IF EXISTS t" with
        | Ast.Drop { if_exists = true; kind = `Table; _ } -> ()
        | _ -> Alcotest.fail "drop");
    Util.tc "explain" (fun () ->
        match parse "EXPLAIN SELECT 1" with
        | Ast.Explain (Ast.Select_stmt _) -> ()
        | _ -> Alcotest.fail "explain");
    Util.tc "script parsing" (fun () ->
        let stmts = Parser.parse_script "SELECT 1; SELECT 2;; SELECT 3" in
        Alcotest.(check int) "three statements" 3 (List.length stmts));
    Util.tc "date literal" (fun () ->
        match parse_expr "DATE '2024-06-09'" with
        | Ast.Cast (Ast.Lit (Ast.L_string "2024-06-09"), Ast.T_date) -> ()
        | _ -> Alcotest.fail "date literal");
    Util.tc "rejects trailing garbage" (check_rejects "SELECT 1 FROM t xyz 12");
    Util.tc "rejects missing FROM table" (check_rejects "SELECT * FROM WHERE");
    Util.tc "rejects bad insert" (check_rejects "INSERT t VALUES (1)");
    Util.tc "rejects star in sum" (check_rejects "SELECT SUM(*) FROM t");
    (* printer round trips *)
    Util.tc "roundtrip: listing-2 combine"
      (check_roundtrip
         "INSERT OR REPLACE INTO query_groups WITH ivm_cte AS (SELECT \
          group_index, SUM(CASE WHEN m = FALSE THEN -total_value ELSE \
          total_value END) AS total_value FROM delta_query_groups GROUP BY \
          group_index) SELECT d.group_index, SUM(COALESCE(q.total_value, 0) \
          + d.total_value) FROM ivm_cte AS d LEFT JOIN query_groups ON \
          q.group_index = d.group_index GROUP BY q.group_index");
    Util.tc "roundtrip: quantified select"
      (check_roundtrip
         "SELECT a.x AS x, COUNT(*) AS n FROM t AS a JOIN u AS b ON a.k = \
          b.k WHERE a.v BETWEEN 1 AND 10 OR b.w IS NULL GROUP BY a.x \
          ORDER BY a.x DESC LIMIT 3");
    Util.tc "roundtrip: set operations"
      (check_roundtrip "SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM w");
    Util.tc "roundtrip: in-subquery"
      (check_roundtrip "DELETE FROM v WHERE k IN (SELECT k FROM d WHERE m = FALSE)");
    Util.tc "roundtrip: create table"
      (check_roundtrip "CREATE TABLE t (a INTEGER NOT NULL, b DOUBLE, c VARCHAR, PRIMARY KEY (a))");
    Util.tc "roundtrip: update"
      (check_roundtrip "UPDATE t SET a = a % 3 WHERE NOT b OR c LIKE 'x%'");
    (* --- position threading --- *)
    Util.tc "positions: where clause expression" (fun () ->
        let sql = "SELECT k FROM t WHERE amount > 100" in
        let s, spans = Parser.parse_select_positioned sql in
        match s.Ast.where with
        | Some w ->
          (match Parser.expr_span spans w with
           | Some sp ->
             Alcotest.(check string) "span text" "amount > 100"
               (String.sub sql sp.Diagnostic.start_pos
                  (sp.Diagnostic.stop_pos - sp.Diagnostic.start_pos))
           | None -> Alcotest.fail "WHERE expression has no span")
        | None -> Alcotest.fail "expected WHERE");
    Util.tc "positions: each projection has its own span" (fun () ->
        let sql = "SELECT k, SUM(v) AS s FROM t GROUP BY k" in
        let s, spans = Parser.parse_select_positioned sql in
        let texts =
          List.map
            (fun (e, _) ->
               match Parser.expr_span spans e with
               | Some sp ->
                 String.sub sql sp.Diagnostic.start_pos
                   (sp.Diagnostic.stop_pos - sp.Diagnostic.start_pos)
               | None -> "<none>")
            s.Ast.projections
        in
        Alcotest.(check (list string)) "texts" [ "k"; "SUM(v)" ] texts);
    Util.tc "positions: from items" (fun () ->
        let sql = "SELECT t.k FROM t JOIN u ON t.k = u.k" in
        let s, spans = Parser.parse_select_positioned sql in
        match s.Ast.from with
        | Some (Ast.Join (l, _, r, _)) ->
          let text f =
            match Parser.from_span spans f with
            | Some sp ->
              String.sub sql sp.Diagnostic.start_pos
                (sp.Diagnostic.stop_pos - sp.Diagnostic.start_pos)
            | None -> "<none>"
          in
          Alcotest.(check string) "left" "t" (text l);
          Alcotest.(check string) "right" "u" (text r)
        | _ -> Alcotest.fail "expected a join");
    Util.tc "positions: script offsets are global" (fun () ->
        let sql = "SELECT 1 AS a;\nSELECT nope FROM t;" in
        let stmts, spans = Parser.parse_script_positioned sql in
        match stmts with
        | [ _; Ast.Select_stmt s2 ] ->
          let e = fst (List.hd s2.Ast.projections) in
          (match Parser.expr_span spans e with
           | Some sp ->
             Alcotest.(check string) "second stmt text" "nope"
               (String.sub sql sp.Diagnostic.start_pos
                  (sp.Diagnostic.stop_pos - sp.Diagnostic.start_pos));
             Alcotest.(check (pair int int)) "line/col" (2, 8)
               (Diagnostic.line_col sql sp.Diagnostic.start_pos)
           | None -> Alcotest.fail "projection has no span")
        | _ -> Alcotest.fail "expected two statements");
    Util.tc "positions: plain entry points stay span-free" (fun () ->
        (* structural equality with positioned parse: the AST itself must
           not carry positions *)
        let sql = "SELECT k, v + 1 AS x FROM t WHERE v > 2" in
        let plain = Parser.parse_statement sql in
        let positioned, _ = Parser.parse_statement_positioned sql in
        Alcotest.(check bool) "same AST" true (plain = positioned));
  ]
