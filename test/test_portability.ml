(** Script portability: the compiler's *emitted SQL text* — not the
    in-memory statement list — must be executable by a consumer that only
    has a SQL interface, in every dialect we emit. This validates the
    paper's deployment story: the propagation scripts are stored on disk
    "to allow future inspection and usage without having to start DuckDB",
    and the PostgreSQL dialect output must round-trip through parsing.

    The simulated consumer: a fresh engine that (1) runs the setup script
    text, (2) plays delta capture by inserting multiplicity-tagged rows
    into the delta tables through plain SQL, (3) runs the propagation
    script text, and (4) compares the view table against recomputation. *)

open Openivm_engine

let groups_ddl = "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)"

let run_script db text =
  List.iter
    (fun stmt -> ignore (Database.exec_stmt db stmt))
    (Openivm_sql.Parser.parse_script text)

(** Compile [view_sql], deploy its text onto a fresh engine, feed deltas
    through SQL, propagate through the stored text, compare. *)
let deploy_and_check ~dialect ~view_sql ~initial ~delta_inserts ~delta_deletes
    ~reference () =
  (* compile against a catalog that knows the base table *)
  let compile_db = Util.db_with [ groups_ddl ] in
  let flags = { Openivm.Flags.default with dialect } in
  let compiled =
    Openivm.Compiler.compile ~flags (Database.catalog compile_db) view_sql
  in
  (* the consumer engine sees only SQL text *)
  let consumer = Util.db_with [ groups_ddl ] in
  List.iter (fun sql -> Util.exec consumer sql) initial;
  run_script consumer (Openivm.Compiler.setup_sql compiled);
  (* play the capture triggers: tag rows with the multiplicity column *)
  let delta_table = Openivm.Compiler.delta_table compiled "groups" in
  List.iter
    (fun (k, v) ->
       Util.exec consumer
         (Printf.sprintf "INSERT INTO %s VALUES ('%s', %d, TRUE)" delta_table k v))
    delta_inserts;
  List.iter
    (fun (k, v) ->
       Util.exec consumer
         (Printf.sprintf "INSERT INTO %s VALUES ('%s', %d, FALSE)" delta_table k v);
       (* the base table change itself *)
       Util.exec consumer
         (Printf.sprintf
            "DELETE FROM groups WHERE group_index = '%s' AND group_value = %d"
            k v))
    delta_deletes;
  List.iter
    (fun (k, v) ->
       Util.exec consumer
         (Printf.sprintf "INSERT INTO groups VALUES ('%s', %d)" k v))
    delta_inserts;
  run_script consumer (Openivm.Compiler.propagation_sql compiled);
  let visible =
    String.concat ", "
      (Openivm.Shape.visible_names compiled.Openivm.Compiler.shape)
  in
  Alcotest.(check (list string))
    (Printf.sprintf "deployed view (%s) = recompute" dialect.Openivm_sql.Dialect.name)
    (Util.sorted_rows consumer reference)
    (Util.sorted_rows consumer
       (Printf.sprintf "SELECT %s FROM query_groups" visible));
  (* delta tables must be empty after step 4 *)
  Util.check_scalar consumer
    (Printf.sprintf "SELECT COUNT(*) FROM %s" delta_table) "0"

let sum_view =
  "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
   SUM(group_value) AS total_value, COUNT(*) AS n FROM groups GROUP BY \
   group_index"

let sum_reference =
  "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) AS n FROM \
   groups GROUP BY group_index"

let initial =
  [ "INSERT INTO groups VALUES ('a', 1), ('a', 2), ('b', 5), ('c', 9)" ]

let delta_inserts = [ ("a", 10); ("d", 4); ("d", 6) ]
let delta_deletes = [ ("b", 5); ("a", 1) ]

let suite =
  [ Util.tc "stored duckdb script deploys on a fresh engine"
      (deploy_and_check ~dialect:Openivm_sql.Dialect.duckdb ~view_sql:sum_view
         ~initial ~delta_inserts ~delta_deletes ~reference:sum_reference);
    Util.tc "stored postgres script deploys after reparsing"
      (deploy_and_check ~dialect:Openivm_sql.Dialect.postgres
         ~view_sql:sum_view ~initial ~delta_inserts ~delta_deletes
         ~reference:sum_reference);
    Util.tc "stored min/max (rederive) script deploys"
      (deploy_and_check ~dialect:Openivm_sql.Dialect.duckdb
         ~view_sql:
           "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
            MIN(group_value) AS lo, MAX(group_value) AS hi FROM groups GROUP \
            BY group_index"
         ~initial ~delta_inserts ~delta_deletes
         ~reference:
           "SELECT group_index, MIN(group_value) AS lo, MAX(group_value) AS \
            hi FROM groups GROUP BY group_index");
    Util.tc "stored global-aggregate script deploys"
      (deploy_and_check ~dialect:Openivm_sql.Dialect.duckdb
         ~view_sql:
           "CREATE MATERIALIZED VIEW query_groups AS SELECT SUM(group_value) \
            AS s, COUNT(*) AS n, AVG(group_value) AS m FROM groups"
         ~initial ~delta_inserts ~delta_deletes
         ~reference:
           "SELECT SUM(group_value) AS s, COUNT(*) AS n, AVG(group_value) AS \
            m FROM groups");
    Util.tc "metadata scripts table replays identically" (fun () ->
        (* the runner stores the propagation steps in _openivm_scripts; a
           replay from the metadata alone must keep maintaining the view *)
        let db = Util.db_with [ groups_ddl ] in
        Util.exec db "INSERT INTO groups VALUES ('a', 1), ('b', 2)";
        let v = Openivm.Runner.install db sum_view in
        Util.exec db "INSERT INTO groups VALUES ('a', 5)";
        (* read the stored steps instead of calling the runner *)
        let stored =
          Database.query db
            "SELECT sql FROM _openivm_scripts WHERE view_name = \
             'query_groups' ORDER BY step"
        in
        List.iter
          (fun (row : Row.t) ->
             match row.(0) with
             | Value.Str sql -> Util.exec db sql
             | _ -> Alcotest.fail "bad script row")
          stored.Database.rows;
        v.Openivm.Runner.pending_deltas <- 0;
        Util.check_view_consistent db v);
  ]
