open Openivm_sql

(* random expression generator for print/parse round-trips *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let lit =
    oneof
      [ map (fun i -> Ast.Lit (Ast.L_int i)) (int_range (-1000) 1000);
        map (fun b -> Ast.Lit (Ast.L_bool b)) bool;
        return (Ast.Lit Ast.L_null);
        map
          (fun s -> Ast.Lit (Ast.L_string s))
          (string_size ~gen:(char_range 'a' 'z') (int_bound 6)) ]
  in
  let column =
    oneof
      [ map (fun c -> Ast.Column (None, "c" ^ string_of_int c)) (int_bound 5);
        map (fun c -> Ast.Column (Some "t", "c" ^ string_of_int c)) (int_bound 5) ]
  in
  let binop =
    oneofl
      [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq; Ast.Neq;
        Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or; Ast.Concat ]
  in
  fix
    (fun self depth ->
       if depth = 0 then oneof [ lit; column ]
       else
         frequency
           [ (2, lit);
             (2, column);
             (4,
              map3
                (fun op a b -> Ast.Binary (op, a, b))
                binop (self (depth - 1)) (self (depth - 1)));
             (1, map (fun a -> Ast.Unary (Ast.Not, a)) (self (depth - 1)));
             (1, map (fun a -> Ast.Unary (Ast.Neg, a)) (self (depth - 1)));
             (1,
              map2
                (fun a es -> Ast.In_list (a, es, false))
                (self (depth - 1))
                (list_size (int_range 1 3) (self 0)));
             (1,
              map3
                (fun a lo hi -> Ast.Between (a, lo, hi, true))
                (self (depth - 1)) (self 0) (self 0));
             (1, map (fun a -> Ast.Is_null (a, false)) (self (depth - 1)));
             (1,
              map3
                (fun c v d -> Ast.Case ([ (c, v) ], Some d))
                (self (depth - 1)) (self (depth - 1)) (self 0));
             (1, map (fun a -> Ast.Cast (a, Ast.T_text)) (self (depth - 1)));
             (1,
              map
                (fun a -> Ast.Func ("coalesce", [ a; Ast.Lit (Ast.L_int 0) ]))
                (self (depth - 1)));
             (1,
              map
                (fun a -> Ast.Aggregate (Ast.Sum, false, Some a))
                (self (depth - 1))) ])
    4

let arb_expr =
  QCheck.make ~print:(Pretty.expr_to_sql Dialect.duckdb) gen_expr

let qcheck =
  [ QCheck.Test.make ~count:1000 ~name:"print/parse expression round-trip"
      arb_expr
      (fun e ->
         let printed = Pretty.expr_to_sql Dialect.duckdb e in
         let reparsed = Parser.parse_expression printed in
         let reprinted = Pretty.expr_to_sql Dialect.duckdb reparsed in
         String.equal printed reprinted) ]

let suite =
  [ Util.tc "keywords quoted as identifiers" (fun () ->
        Alcotest.(check string) "quoted" "\"select\""
          (Dialect.quote_ident Dialect.duckdb "select"));
    Util.tc "mixed-case identifiers quoted" (fun () ->
        Alcotest.(check string) "quoted" "\"MyCol\""
          (Dialect.quote_ident Dialect.duckdb "MyCol"));
    Util.tc "plain identifiers unquoted" (fun () ->
        Alcotest.(check string) "plain" "group_index"
          (Dialect.quote_ident Dialect.duckdb "group_index"));
    Util.tc "string literals escape quotes" (fun () ->
        Alcotest.(check string) "escaped" "'it''s'"
          (Pretty.lit_to_sql (Ast.L_string "it's")));
    Util.tc "precedence needs no spurious parens" (fun () ->
        let e = Parser.parse_expression "a + b * c" in
        Alcotest.(check string) "printed" "a + b * c"
          (Pretty.expr_to_sql Dialect.duckdb e));
    Util.tc "precedence adds required parens" (fun () ->
        let e = Parser.parse_expression "(a + b) * c" in
        Alcotest.(check string) "printed" "(a + b) * c"
          (Pretty.expr_to_sql Dialect.duckdb e));
    Util.tc "left-associative subtraction round-trips" (fun () ->
        let e = Parser.parse_expression "a - (b - c)" in
        Alcotest.(check string) "printed" "a - (b - c)"
          (Pretty.expr_to_sql Dialect.duckdb e));
    Util.tc "float literals keep a decimal point" (fun () ->
        Alcotest.(check string) "2.0" "2.0" (Pretty.lit_to_sql (Ast.L_float 2.0)));
    Util.tc "postgres upsert emission with explicit keys" (fun () ->
        let stmt =
          Parser.parse_statement
            "INSERT OR REPLACE INTO v (k, s) SELECT k, s FROM d"
        in
        let sql =
          Pretty.stmt_to_sql ~upsert_keys:[ "k" ] Dialect.postgres stmt
        in
        Alcotest.(check string) "postgres upsert"
          "INSERT INTO v (k, s) SELECT k, s FROM d ON CONFLICT (k) DO \
           UPDATE SET s = EXCLUDED.s"
          sql);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck
