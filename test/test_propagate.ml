(** Structural tests on the generated propagation scripts: statement
    counts and shapes per plan kind, the inclusion–exclusion fill term
    structure for N-way joins, and cleanup coverage. *)

open Openivm_engine
module Ast = Openivm_sql.Ast

let catalog () =
  Database.catalog
    (Util.db_with
       [ "CREATE TABLE a(k INTEGER, v INTEGER)";
         "CREATE TABLE b(k INTEGER, w INTEGER)";
         "CREATE TABLE c(k INTEGER, x INTEGER)";
         "CREATE TABLE d(k INTEGER, f DOUBLE)" ])

let compile ?flags sql = Openivm.Compiler.compile ?flags (catalog ()) sql

let script c = c.Openivm.Compiler.script

let sqls c =
  List.map snd (Openivm.Compiler.script_steps c)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let count_where pred xs = List.length (List.filter pred xs)

let suite =
  [ Util.tc "single-table linear script has 1 fill, 1 combine, 1 prune, 2 cleanups"
      (fun () ->
         let c =
           compile "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(v) AS s FROM a GROUP BY k"
         in
         let s = script c in
         Alcotest.(check int) "fill" 1 (List.length s.Openivm.Propagate.fill);
         Alcotest.(check int) "combine" 1 (List.length s.Openivm.Propagate.combine);
         Alcotest.(check int) "prune" 1 (List.length s.Openivm.Propagate.prune);
         Alcotest.(check int) "cleanup" 2 (List.length s.Openivm.Propagate.cleanup));
    Util.tc "two-way join emits 3 fill terms, three-way emits 7" (fun () ->
        let c2 =
          compile
            "CREATE MATERIALIZED VIEW v AS SELECT a.k, COUNT(*) AS n FROM a \
             JOIN b ON a.k = b.k GROUP BY a.k"
        in
        Alcotest.(check int) "2-way" 3
          (List.length (script c2).Openivm.Propagate.fill);
        let c3 =
          compile
            "CREATE MATERIALIZED VIEW v AS SELECT a.k, COUNT(*) AS n FROM a \
             JOIN b ON a.k = b.k JOIN c ON b.k = c.k GROUP BY a.k"
        in
        Alcotest.(check int) "3-way" 7
          (List.length (script c3).Openivm.Propagate.fill);
        (* 3 single-delta terms, 3 double-delta (one <>), 1 triple (two <>) *)
        let fills =
          List.filter (fun (p, _) -> p = "fill_delta_view")
            (Openivm.Compiler.script_steps c3)
        in
        let xor_count sql =
          let rec go i acc =
            if i + 2 > String.length sql then acc
            else if String.sub sql i 2 = "<>" then go (i + 1) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        let counts = List.sort compare (List.map (fun (_, s) -> xor_count s) fills) in
        Alcotest.(check (list int)) "xor chain lengths"
          [ 0; 0; 0; 2; 2; 2; 4 ] counts);
        (* each XOR chain appears twice: projection and GROUP BY *)
    Util.tc "cleanup clears the delta view and every base delta" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW v AS SELECT a.k, COUNT(*) AS n FROM a \
             JOIN b ON a.k = b.k JOIN c ON b.k = c.k GROUP BY a.k"
        in
        let cleanups =
          List.filter (fun (p, _) -> p = "cleanup") (Openivm.Compiler.script_steps c)
        in
        Alcotest.(check int) "count" 4 (List.length cleanups);
        List.iter
          (fun d ->
             Alcotest.(check bool) d true
               (List.exists (fun (_, s) -> contains s d) cleanups))
          [ "delta_v"; "delta_v__a"; "delta_v__b"; "delta_v__c" ]);
    Util.tc "join condition lands in fill WHERE clauses" (fun () ->
        let c =
          compile
            "CREATE MATERIALIZED VIEW v AS SELECT a.k, COUNT(*) AS n FROM a \
             JOIN b ON a.k = b.k WHERE a.v > 5 GROUP BY a.k"
        in
        List.iter
          (fun (p, sql) ->
             if p = "fill_delta_view" then begin
               Alcotest.(check bool) "has join cond" true (contains sql "a.k = b.k");
               Alcotest.(check bool) "has filter" true (contains sql "a.v > 5")
             end)
          (Openivm.Compiler.script_steps c));
    Util.tc "rederive script: delete-affected then recompute, no prune" (fun () ->
        let flags = { Openivm.Flags.default with strategy = Openivm.Flags.Rederive_affected } in
        let c =
          compile ~flags "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(v) AS s FROM a GROUP BY k"
        in
        let s = script c in
        Alcotest.(check bool) "kind" true (s.Openivm.Propagate.kind = Openivm.Propagate.Rederive);
        Alcotest.(check int) "combine = delete + insert" 2
          (List.length s.Openivm.Propagate.combine);
        Alcotest.(check int) "no prune" 0 (List.length s.Openivm.Propagate.prune));
    Util.tc "multi-column group rederive uses the tuple key" (fun () ->
        let flags = { Openivm.Flags.default with strategy = Openivm.Flags.Rederive_affected } in
        let c =
          compile ~flags
            "CREATE MATERIALIZED VIEW v AS SELECT k, v, COUNT(*) AS n FROM a \
             GROUP BY k, v"
        in
        let all = String.concat "\n" (sqls c) in
        Alcotest.(check bool) "concatenated key" true (contains all "||"));
    Util.tc "regression: float-argument SUM/AVG routes to rederive" (fun () ->
        (* fuzz seed 209460: a linear float sum drifts from the recompute
           once deletes retract previously added values (x + d - d loses
           last bits), so SUM/AVG over non-integer arguments must rederive
           like MIN/MAX — under every linear strategy *)
        List.iter
          (fun strategy ->
             let flags = { Openivm.Flags.default with strategy } in
             let grouped =
               compile ~flags
                 "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(f) AS s FROM d \
                  GROUP BY k"
             in
             Alcotest.(check string) "grouped float sum rederives" "rederive"
               (Openivm.Propagate.kind_to_string
                  (script grouped).Openivm.Propagate.kind);
             let global =
               compile ~flags
                 "CREATE MATERIALIZED VIEW v AS SELECT AVG(f) AS a FROM d"
             in
             Alcotest.(check string) "global float avg recomputes" "full"
               (Openivm.Propagate.kind_to_string
                  (script global).Openivm.Propagate.kind))
          [ Openivm.Flags.Upsert_linear; Openivm.Flags.Union_regroup;
            Openivm.Flags.Outer_join_merge ];
        (* integer arguments keep their linear running state *)
        let int_sum =
          compile "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(v) AS s FROM a \
                   GROUP BY k"
        in
        Alcotest.(check string) "integer sum stays linear" "linear"
          (Openivm.Propagate.kind_to_string
             (script int_sum).Openivm.Propagate.kind));
    Util.tc "global linear uses the stage in four statements" (fun () ->
        let c = compile "CREATE MATERIALIZED VIEW v AS SELECT COUNT(*) AS n FROM a" in
        let s = script c in
        Alcotest.(check bool) "kind" true
          (s.Openivm.Propagate.kind = Openivm.Propagate.Global_linear);
        Alcotest.(check int) "combine statements" 4
          (List.length s.Openivm.Propagate.combine));
    Util.tc "full recompute has no fill and no prune" (fun () ->
        let flags = { Openivm.Flags.default with strategy = Openivm.Flags.Full_recompute } in
        let c =
          compile ~flags "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(v) AS s FROM a GROUP BY k"
        in
        let s = script c in
        Alcotest.(check int) "fill" 0 (List.length s.Openivm.Propagate.fill);
        Alcotest.(check int) "prune" 0 (List.length s.Openivm.Propagate.prune);
        Alcotest.(check int) "combine" 2 (List.length s.Openivm.Propagate.combine));
    Util.tc "flat view fill groups by all columns plus multiplicity" (fun () ->
        let c = compile "CREATE MATERIALIZED VIEW v AS SELECT k, v FROM a WHERE v > 0" in
        match (script c).Openivm.Propagate.fill with
        | [ Ast.Insert { source = Ast.Query q; _ } ] ->
          Alcotest.(check int) "group by arity" 3 (List.length q.Ast.group_by)
        | _ -> Alcotest.fail "expected one INSERT ... SELECT");
    Util.tc "every generated statement parses in both dialects" (fun () ->
        List.iter
          (fun view_sql ->
             List.iter
               (fun dialect ->
                  let flags = { Openivm.Flags.default with dialect } in
                  let c = compile ~flags view_sql in
                  let text =
                    Openivm.Compiler.setup_sql c ^ Openivm.Compiler.propagation_sql c
                  in
                  ignore (Openivm_sql.Parser.parse_script text))
               [ Openivm_sql.Dialect.duckdb; Openivm_sql.Dialect.postgres ])
          [ "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(v) AS s, AVG(v) AS m FROM a GROUP BY k";
            "CREATE MATERIALIZED VIEW v AS SELECT k, MIN(v) AS lo FROM a GROUP BY k";
            "CREATE MATERIALIZED VIEW v AS SELECT a.k, COUNT(*) AS n FROM a \
             JOIN b ON a.k = b.k GROUP BY a.k";
            "CREATE MATERIALIZED VIEW v AS SELECT SUM(v) AS s FROM a" ]);
  ]
