(** Query fuzzing: random SELECTs checked for two engine invariants —
    (1) the optimizer preserves results (optimized ≡ unoptimized), and
    (2) emitted SQL round-trips: print → parse → execute gives the same
        rows as the original.
    Since PR 3 the query grammar and both checks live in [Openivm_fuzz];
    each test here is one query-only generated case (12 SELECTs over a
    random schema, setup and workload). *)

module F = Openivm_fuzz

let run_case seed () =
  let case = F.Gen.case ~seed ~with_view:false ~queries:12 () in
  let outcome = F.Oracle.run case in
  (match outcome.F.Oracle.failure with
   | Some f -> Alcotest.fail f.F.Oracle.message
   | None -> ());
  if outcome.F.Oracle.checks < 24 then
    Alcotest.failf "case #%d ran only %d checks (want 2 per query)" seed
      outcome.F.Oracle.checks

let suite =
  List.map
    (fun seed ->
       Util.tc (Printf.sprintf "random queries #%d" seed) (run_case seed))
    [ 101; 102; 103; 104; 105; 106; 107; 108; 109; 110 ]
