(** Query fuzzing: generate random SELECTs from a grammar and check two
    engine invariants on each —
    (1) the optimizer preserves results (optimized ≡ unoptimized), and
    (2) emitted SQL round-trips: print → parse → execute gives the same
        rows as the original. *)

open Openivm_engine

let schema =
  [ "CREATE TABLE r(a INTEGER, b INTEGER, s VARCHAR)";
    "CREATE TABLE q(a INTEGER, c INTEGER)";
    "CREATE INDEX idx_r_a ON r(a)" ]

let populate db rng =
  let r = Catalog.find_table (Database.catalog db) "r" in
  let q = Catalog.find_table (Database.catalog db) "q" in
  Trigger.without_hooks (Database.triggers db) (fun () ->
      for _ = 1 to 60 do
        Table.insert r
          [| (if Random.State.int rng 8 = 0 then Value.Null
              else Value.Int (Random.State.int rng 6));
             (if Random.State.int rng 8 = 0 then Value.Null
              else Value.Int (Random.State.int rng 40));
             Value.Str (Printf.sprintf "s%d" (Random.State.int rng 4)) |]
      done;
      for _ = 1 to 25 do
        Table.insert q
          [| Value.Int (Random.State.int rng 6);
             Value.Int (Random.State.int rng 40) |]
      done)

(* --- the query grammar --- *)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let scalar_exprs = [ "r.a"; "r.b"; "r.a + 1"; "r.b % 5"; "r.s" ]
let predicates =
  [ "r.b > 10"; "r.a = 2"; "r.s <> 's1'"; "r.b BETWEEN 5 AND 30";
    "r.a IS NOT NULL"; "r.s LIKE 's%'"; "r.a IN (1, 2, 3)";
    "1 = 1 AND r.b >= 0"; "r.a IN (SELECT a FROM q WHERE c > 10)" ]

let aggregates = [ "COUNT(*)"; "SUM(r.b)"; "MIN(r.b)"; "MAX(r.a)"; "AVG(r.b)"; "COUNT(r.a)" ]

let random_query rng : string =
  let joined = Random.State.int rng 3 = 0 in
  let from =
    if joined then "r JOIN q ON r.a = q.a" else "r"
  in
  let where =
    if Random.State.bool rng then " WHERE " ^ pick rng predicates else ""
  in
  let grouped = Random.State.bool rng in
  if grouped then begin
    let key = pick rng [ "r.a"; "r.s"; "r.b % 3" ] in
    let agg1 = pick rng aggregates in
    let agg2 = pick rng aggregates in
    let having =
      if Random.State.int rng 3 = 0 then " HAVING COUNT(*) > 1" else ""
    in
    Printf.sprintf "SELECT %s AS k, %s AS x, %s AS y FROM %s%s GROUP BY %s%s"
      key agg1 agg2 from where key having
  end
  else begin
    let p1 = pick rng scalar_exprs in
    let p2 = pick rng scalar_exprs in
    let distinct = if Random.State.int rng 4 = 0 then "DISTINCT " else "" in
    Printf.sprintf "SELECT %s%s AS x, %s AS y FROM %s%s" distinct p1 p2 from
      where
  end

let run_case seed () =
  let rng = Random.State.make [| seed |] in
  let db = Util.db_with schema in
  populate db rng;
  for _ = 1 to 12 do
    let sql = random_query rng in
    (* (1) optimizer preservation *)
    let optimized = Util.sorted_rows db sql in
    db.Database.optimizer_enabled <- false;
    let plain = Util.sorted_rows db sql in
    db.Database.optimizer_enabled <- true;
    Alcotest.(check (list string)) ("optimizer: " ^ sql) plain optimized;
    (* (2) print/parse/execute round-trip *)
    let reprinted =
      Openivm_sql.Pretty.stmt_to_sql Openivm_sql.Dialect.minidb
        (Openivm_sql.Parser.parse_statement sql)
    in
    Alcotest.(check (list string)) ("roundtrip: " ^ sql) optimized
      (Util.sorted_rows db reprinted)
  done

let suite =
  List.map
    (fun seed -> Util.tc (Printf.sprintf "random queries #%d" seed) (run_case seed))
    [ 101; 102; 103; 104; 105; 106; 107; 108; 109; 110 ]
