(** Meta property test: generate random *view definitions* from a small
    grammar (source shape × group keys × aggregate set × optional filter),
    then drive each through a random workload under every combine strategy,
    checking view ≡ recompute after every refresh. This covers the cross
    product of template paths no hand-written scenario list reaches. *)


let schema =
  [ "CREATE TABLE fact(k1 VARCHAR, k2 INTEGER, v1 INTEGER, v2 INTEGER)";
    "CREATE TABLE dim(k2 INTEGER, label VARCHAR)" ]

(* --- view grammar --- *)

type view_config = {
  joined : bool;
  group_keys : string list;     (** qualified column names *)
  aggs : (string * string) list;  (** (SQL aggregate expr, alias) *)
  where : string option;
}

let render (c : view_config) : string =
  let projections =
    List.map (fun k -> Printf.sprintf "%s AS g_%s" k
                 (String.map (function '.' -> '_' | ch -> ch) k))
      c.group_keys
    @ List.map (fun (e, a) -> Printf.sprintf "%s AS %s" e a) c.aggs
  in
  let from =
    if c.joined then "fact JOIN dim ON fact.k2 = dim.k2" else "fact"
  in
  let where = match c.where with Some w -> " WHERE " ^ w | None -> "" in
  let group =
    if c.group_keys = [] then ""
    else " GROUP BY " ^ String.concat ", " c.group_keys
  in
  Printf.sprintf "CREATE MATERIALIZED VIEW v AS SELECT %s FROM %s%s%s"
    (String.concat ", " projections)
    from where group

let random_config rng : view_config =
  let joined = Random.State.bool rng in
  let key_pool =
    if joined then [ "fact.k1"; "dim.label"; "fact.k2" ]
    else [ "k1"; "k2" ]
  in
  let group_keys =
    List.filter (fun _ -> Random.State.int rng 3 > 0) key_pool
  in
  let value_col = if joined then "fact.v1" else "v1" in
  let value_col2 = if joined then "fact.v2" else "v2" in
  let agg_pool =
    [ (Printf.sprintf "SUM(%s)" value_col, "s1");
      (Printf.sprintf "COUNT(*)", "n");
      (Printf.sprintf "COUNT(%s)" value_col2, "c2");
      (Printf.sprintf "MIN(%s)" value_col, "lo");
      (Printf.sprintf "MAX(%s)" value_col2, "hi");
      (Printf.sprintf "AVG(%s)" value_col, "m") ]
  in
  let aggs = List.filter (fun _ -> Random.State.int rng 3 = 0) agg_pool in
  (* flat views need at least one projection; aggregate views always get
     one aggregate to stay in the aggregate class when keys are empty *)
  let aggs =
    if aggs = [] && (group_keys = [] || Random.State.bool rng) then
      [ (Printf.sprintf "SUM(%s)" value_col, "s1") ]
    else aggs
  in
  let group_keys =
    if group_keys = [] && aggs = [] then [ List.hd key_pool ] else group_keys
  in
  let where =
    match Random.State.int rng 3 with
    | 0 -> Some (Printf.sprintf "%s > %d" value_col (Random.State.int rng 40))
    | 1 when joined -> Some "fact.v2 % 2 = 0"
    | _ -> None
  in
  { joined; group_keys; aggs; where }

(* --- workload --- *)

let random_dml rng =
  match Random.State.int rng 10 with
  | 0 | 1 | 2 | 3 ->
    Printf.sprintf "INSERT INTO fact VALUES ('%c', %d, %d, %d)"
      (Char.chr (Char.code 'a' + Random.State.int rng 3))
      (Random.State.int rng 4)
      (Random.State.int rng 80)
      (Random.State.int rng 80)
  | 4 ->
    Printf.sprintf "INSERT INTO fact VALUES (NULL, %d, NULL, %d)"
      (Random.State.int rng 4)
      (Random.State.int rng 80)
  | 5 ->
    Printf.sprintf "INSERT INTO dim VALUES (%d, 'L%d')"
      (Random.State.int rng 4)
      (Random.State.int rng 2)
  | 6 ->
    Printf.sprintf "DELETE FROM fact WHERE k2 = %d AND v1 %% 3 = %d"
      (Random.State.int rng 4)
      (Random.State.int rng 3)
  | 7 ->
    Printf.sprintf "UPDATE fact SET v1 = v1 + %d WHERE k2 = %d"
      (1 + Random.State.int rng 9)
      (Random.State.int rng 4)
  | 8 -> Printf.sprintf "DELETE FROM dim WHERE k2 = %d" (Random.State.int rng 4)
  | _ ->
    Printf.sprintf "UPDATE fact SET v2 = NULL WHERE k2 = %d AND v2 > 60"
      (Random.State.int rng 4)

let run_config ~seed ~strategy () =
  let rng = Random.State.make [| seed |] in
  let config = random_config rng in
  let view_sql = render config in
  let db = Util.db_with schema in
  for _ = 1 to 15 do
    Util.exec db (random_dml rng)
  done;
  let flags = { Openivm.Flags.default with strategy } in
  match Openivm.Runner.install ~flags db view_sql with
  | exception Openivm.Compiler.Unsupported_view reason ->
    Alcotest.failf "generated an unsupported view (%s): %s" reason view_sql
  | v ->
    Util.check_view_consistent ~msg:("initial: " ^ view_sql) db v;
    for round = 1 to 5 do
      for _ = 1 to 8 do
        Util.exec db (random_dml rng)
      done;
      Openivm.Runner.refresh v;
      Util.check_view_consistent
        ~msg:(Printf.sprintf "round %d: %s" round view_sql)
        db v
    done

let suite =
  List.concat_map
    (fun seed ->
       List.map
         (fun (sname, strategy) ->
            Util.tc
              (Printf.sprintf "random view #%d [%s]" seed sname)
              (run_config ~seed ~strategy))
         [ ("linear", Openivm.Flags.Upsert_linear);
           ("regroup", Openivm.Flags.Union_regroup);
           ("outer-merge", Openivm.Flags.Outer_join_merge);
           ("rederive", Openivm.Flags.Rederive_affected);
           ("full", Openivm.Flags.Full_recompute) ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
