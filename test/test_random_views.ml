(** Meta property test: random *view definitions* driven through random
    workloads, checking view ≡ recompute after every refresh. Since PR 3
    the grammar and the differential check live in [Openivm_fuzz]; each
    test here is one generated case pinned to a single combine strategy,
    so a red test names both the seed and the strategy that broke. *)

module F = Openivm_fuzz

let run_config ~seed ~strategy () =
  let case = F.Gen.case ~seed ~queries:0 () in
  let case =
    { case with
      F.Case.strategies = [ strategy ];
      dialects = [ Openivm_sql.Dialect.duckdb ] }
  in
  let outcome = F.Oracle.run case in
  (match outcome.F.Oracle.failure with
   | Some f -> Alcotest.fail f.F.Oracle.message
   | None -> ());
  if outcome.F.Oracle.checks = 0 then
    Alcotest.failf "case #%d ran no checks" seed

let suite =
  List.concat_map
    (fun seed ->
       List.map
         (fun (sname, strategy) ->
            Util.tc
              (Printf.sprintf "random view #%d [%s]" seed sname)
              (run_config ~seed ~strategy))
         [ ("linear", Openivm.Flags.Upsert_linear);
           ("regroup", Openivm.Flags.Union_regroup);
           ("outer-merge", Openivm.Flags.Outer_join_merge);
           ("rederive", Openivm.Flags.Rederive_affected);
           ("full", Openivm.Flags.Full_recompute) ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
