(** End-to-end IVM correctness: for every supported view class and every
    combine strategy, run randomized insert/update/delete workloads and
    check after each refresh that the maintained view equals recomputation
    from scratch — the defining property f(ΔT) = ΔV of paper §2. *)

open Openivm_engine

let schema =
  [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
    "CREATE TABLE sales(cust INTEGER, amount INTEGER)";
    "CREATE TABLE customers(cust INTEGER, region VARCHAR)";
    "CREATE TABLE rates(region VARCHAR, rate INTEGER)" ]

let random_groups_dml rng =
  match Random.State.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 ->
    Printf.sprintf "INSERT INTO groups VALUES ('g%d', %d)"
      (Random.State.int rng 5)
      (Random.State.int rng 100 - 50)
  | 5 ->
    Printf.sprintf "INSERT INTO groups VALUES (NULL, %d)" (Random.State.int rng 100)
  | 6 | 7 ->
    Printf.sprintf "DELETE FROM groups WHERE group_index = 'g%d' AND group_value %% 3 = %d"
      (Random.State.int rng 5)
      (Random.State.int rng 3)
  | 8 ->
    Printf.sprintf
      "UPDATE groups SET group_value = group_value + %d WHERE group_index = 'g%d'"
      (1 + Random.State.int rng 5)
      (Random.State.int rng 5)
  | _ -> "DELETE FROM groups WHERE group_index IS NULL AND group_value % 2 = 0"

let random_three_way_dml rng =
  match Random.State.int rng 12 with
  | 0 | 1 | 2 | 3 ->
    Printf.sprintf "INSERT INTO sales VALUES (%d, %d)"
      (Random.State.int rng 4)
      (Random.State.int rng 100)
  | 4 | 5 ->
    Printf.sprintf "INSERT INTO customers VALUES (%d, 'r%d')"
      (Random.State.int rng 4)
      (Random.State.int rng 2)
  | 6 | 7 ->
    Printf.sprintf "INSERT INTO rates VALUES ('r%d', %d)"
      (Random.State.int rng 2)
      (1 + Random.State.int rng 5)
  | 8 ->
    Printf.sprintf "DELETE FROM sales WHERE cust = %d AND amount %% 3 = 0"
      (Random.State.int rng 4)
  | 9 ->
    Printf.sprintf "DELETE FROM customers WHERE cust = %d" (Random.State.int rng 4)
  | 10 ->
    Printf.sprintf "DELETE FROM rates WHERE region = 'r%d' AND rate %% 2 = 1"
      (Random.State.int rng 2)
  | _ ->
    Printf.sprintf "UPDATE rates SET rate = rate + 1 WHERE region = 'r%d'"
      (Random.State.int rng 2)

let random_star_dml rng =
  match Random.State.int rng 10 with
  | 0 | 1 | 2 | 3 ->
    Printf.sprintf "INSERT INTO sales VALUES (%d, %d)"
      (Random.State.int rng 6)
      (Random.State.int rng 500)
  | 4 | 5 ->
    Printf.sprintf "INSERT INTO customers VALUES (%d, 'r%d')"
      (Random.State.int rng 6)
      (Random.State.int rng 3)
  | 6 ->
    Printf.sprintf "DELETE FROM sales WHERE cust = %d AND amount %% 2 = 0"
      (Random.State.int rng 6)
  | 7 ->
    Printf.sprintf "UPDATE sales SET amount = amount + 7 WHERE cust = %d"
      (Random.State.int rng 6)
  | 8 ->
    Printf.sprintf "DELETE FROM customers WHERE cust = %d" (Random.State.int rng 6)
  | _ ->
    Printf.sprintf "UPDATE customers SET region = 'r%d' WHERE cust = %d"
      (Random.State.int rng 3)
      (Random.State.int rng 6)

(** Run [rounds] rounds of [batch] random statements + refresh + check. *)
let exercise ?(flags = Openivm.Flags.default) ~view_sql ~dml ~rounds ~batch ~seed
    () =
  let db = Util.db_with schema in
  let rng = Random.State.make [| seed |] in
  (* some initial data before the view exists *)
  for _ = 1 to 10 do
    Util.exec db (dml rng)
  done;
  let v = Openivm.Runner.install ~flags db view_sql in
  Util.check_view_consistent ~msg:"initial load" db v;
  for round = 1 to rounds do
    for _ = 1 to batch do
      Util.exec db (dml rng)
    done;
    Openivm.Runner.refresh v;
    Util.check_view_consistent
      ~msg:(Printf.sprintf "round %d" round)
      db v
  done

let strategies =
  [ ("linear", Openivm.Flags.Upsert_linear);
    ("regroup", Openivm.Flags.Union_regroup);
    ("outer-merge", Openivm.Flags.Outer_join_merge);
    ("rederive", Openivm.Flags.Rederive_affected);
    ("full", Openivm.Flags.Full_recompute) ]

let with_strategy strategy =
  { Openivm.Flags.default with strategy }

let per_strategy name view_sql dml =
  List.map
    (fun (sname, strategy) ->
       Util.tc
         (Printf.sprintf "%s [%s]" name sname)
         (exercise ~flags:(with_strategy strategy) ~view_sql ~dml ~rounds:8
            ~batch:6 ~seed:(Hashtbl.hash (name, sname))))
    strategies

let suite =
  per_strategy "sum/count group view"
    "CREATE MATERIALIZED VIEW v AS SELECT group_index, SUM(group_value) AS \
     total, COUNT(*) AS n FROM groups GROUP BY group_index"
    random_groups_dml
  @ per_strategy "filtered aggregate view"
      "CREATE MATERIALIZED VIEW v AS SELECT group_index, COUNT(group_value) \
       AS n FROM groups WHERE group_value > 0 GROUP BY group_index"
      random_groups_dml
  @ per_strategy "avg view"
      "CREATE MATERIALIZED VIEW v AS SELECT group_index, AVG(group_value) AS \
       mean FROM groups GROUP BY group_index"
      random_groups_dml
  @ per_strategy "min/max view"
      "CREATE MATERIALIZED VIEW v AS SELECT group_index, MIN(group_value) AS \
       lo, MAX(group_value) AS hi FROM groups GROUP BY group_index"
      random_groups_dml
  @ per_strategy "flat filter view"
      "CREATE MATERIALIZED VIEW v AS SELECT group_index, group_value FROM \
       groups WHERE group_value % 2 = 0"
      random_groups_dml
  @ per_strategy "global aggregate view"
      "CREATE MATERIALIZED VIEW v AS SELECT SUM(group_value) AS s, COUNT(*) \
       AS n FROM groups"
      random_groups_dml
  @ per_strategy "join aggregate view"
      "CREATE MATERIALIZED VIEW v AS SELECT customers.region, \
       SUM(sales.amount) AS total, COUNT(*) AS n FROM sales JOIN customers \
       ON sales.cust = customers.cust GROUP BY customers.region"
      random_star_dml
  @ per_strategy "flat join view"
      "CREATE MATERIALIZED VIEW v AS SELECT customers.region, sales.amount \
       FROM sales JOIN customers ON sales.cust = customers.cust"
      random_star_dml
  @ per_strategy "three-way join aggregate view (extension)"
      "CREATE MATERIALIZED VIEW v AS SELECT customers.region, \
       SUM(sales.amount * rates.rate) AS weighted, COUNT(*) AS n FROM sales \
       JOIN customers ON sales.cust = customers.cust JOIN rates ON \
       customers.region = rates.region GROUP BY customers.region"
      random_three_way_dml
  @ per_strategy "group-by-expression view"
      "CREATE MATERIALIZED VIEW v AS SELECT group_value % 3 AS bucket, \
       COUNT(*) AS n FROM groups GROUP BY group_value % 3"
      random_groups_dml
  @ [ Util.tc "eager refresh keeps the view current without explicit refresh"
        (fun () ->
           let db = Util.db_with schema in
           let flags = { Openivm.Flags.default with refresh = Openivm.Flags.Eager } in
           let v =
             Openivm.Runner.install ~flags db
               "CREATE MATERIALIZED VIEW v AS SELECT group_index, \
                SUM(group_value) AS s FROM groups GROUP BY group_index"
           in
           Util.exec db "INSERT INTO groups VALUES ('a', 1), ('b', 2)";
           Util.exec db "INSERT INTO groups VALUES ('a', 10)";
           (* read the table directly: eager mode already propagated *)
           Util.check_rows db "SELECT group_index, s FROM v"
             [ "(a, 11)"; "(b, 2)" ];
           Alcotest.(check int) "refreshed per statement" 2
             v.Openivm.Runner.refresh_count);
      Util.tc "lazy refresh defers until queried" (fun () ->
          let db = Util.db_with schema in
          let v =
            Openivm.Runner.install db
              "CREATE MATERIALIZED VIEW v AS SELECT COUNT(*) AS n FROM groups"
          in
          Util.exec db "INSERT INTO groups VALUES ('a', 1)";
          (* direct table read: still stale *)
          Util.check_rows db "SELECT n FROM v" [ "(0)" ];
          (* runner query triggers the refresh *)
          let r = Openivm.Runner.query v "SELECT n FROM v" in
          Alcotest.(check (list string)) "fresh" [ "(1)" ] (Util.rows_of r));
      Util.tc "two views over one base table stay independent" (fun () ->
          let db = Util.db_with schema in
          let v1 =
            Openivm.Runner.install db
              "CREATE MATERIALIZED VIEW v1 AS SELECT group_index, COUNT(*) \
               AS n FROM groups GROUP BY group_index"
          in
          let v2 =
            Openivm.Runner.install db
              "CREATE MATERIALIZED VIEW v2 AS SELECT group_index, \
               SUM(group_value) AS s FROM groups GROUP BY group_index"
          in
          Util.exec db "INSERT INTO groups VALUES ('a', 5), ('a', 7)";
          (* refresh v1 only, then mutate again, then refresh both *)
          Openivm.Runner.refresh v1;
          Util.exec db "INSERT INTO groups VALUES ('a', 1)";
          Openivm.Runner.refresh v1;
          Openivm.Runner.refresh v2;
          Util.check_view_consistent ~msg:"v1" db v1;
          Util.check_view_consistent ~msg:"v2" db v2);
      Util.tc "uninstall drops the view's objects and stops capture" (fun () ->
          let db = Util.db_with schema in
          let v =
            Openivm.Runner.install db
              "CREATE MATERIALIZED VIEW v AS SELECT COUNT(*) AS n FROM groups"
          in
          Openivm.Runner.uninstall v;
          (match Database.query db "SELECT * FROM v" with
           | exception Error.Sql_error _ -> ()
           | _ -> Alcotest.fail "view table should be dropped");
          (* further DML must not fail on missing delta tables *)
          Util.exec db "INSERT INTO groups VALUES ('a', 1)");
      Util.tc "runner exec intercepts CREATE MATERIALIZED VIEW" (fun () ->
          let db = Util.db_with schema in
          (match
             Openivm.Runner.exec db
               "CREATE MATERIALIZED VIEW v AS SELECT COUNT(*) AS n FROM groups"
           with
           | `Installed _ -> ()
           | `Result _ -> Alcotest.fail "expected installation");
          match Openivm.Runner.exec db "SELECT n FROM v" with
          | `Result (Database.Rows _) -> ()
          | _ -> Alcotest.fail "expected rows");
      Util.tc "scripts are stored on disk when requested" (fun () ->
          let dir = Filename.temp_file "openivm" "" in
          Sys.remove dir;
          let flags = { Openivm.Flags.default with script_dir = Some dir } in
          let db = Util.db_with schema in
          ignore
            (Openivm.Runner.install ~flags db
               "CREATE MATERIALIZED VIEW v AS SELECT COUNT(*) AS n FROM groups");
          let path = Filename.concat dir "v.sql" in
          Alcotest.(check bool) "script file exists" true (Sys.file_exists path);
          let ic = open_in path in
          let len = in_channel_length ic in
          close_in ic;
          Alcotest.(check bool) "non-empty" true (len > 100));
      Util.tc "metadata tables describe the installed view" (fun () ->
          let db = Util.db_with schema in
          ignore
            (Openivm.Runner.install db
               "CREATE MATERIALIZED VIEW v AS SELECT group_index, SUM(group_value) \
                AS s FROM groups GROUP BY group_index");
          Util.check_rows db
            "SELECT view_name, query_type, strategy FROM _openivm_views"
            [ "(v, group_aggregate, upsert_linear)" ];
          Util.check_scalar db
            "SELECT COUNT(*) FROM _openivm_scripts WHERE view_name = 'v'"
            "5");
    ]
