open Openivm_engine

let s : Schema.t =
  [ Schema.column ~table:"t" "k" Sql.Ast.T_text;
    Schema.column ~table:"t" "v" Sql.Ast.T_int;
    Schema.column ~table:"u" "k" Sql.Ast.T_text;
    Schema.column ~table:"u" "w" Sql.Ast.T_float ]

let suite =
  [ Util.tc "qualified lookup picks the right binding" (fun () ->
        let i, c = Schema.find s ~qualifier:(Some "u") ~name:"k" in
        Alcotest.(check int) "position" 2 i;
        Alcotest.(check (option string)) "table" (Some "u") c.Schema.table);
    Util.tc "unqualified unique lookup works" (fun () ->
        let i, _ = Schema.find s ~qualifier:None ~name:"w" in
        Alcotest.(check int) "position" 3 i);
    Util.tc "unqualified ambiguous lookup raises" (fun () ->
        match Schema.find_opt s ~qualifier:None ~name:"k" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected ambiguity error");
    Util.tc "missing column returns None / raises with message" (fun () ->
        Alcotest.(check bool) "find_opt" true
          (Schema.find_opt s ~qualifier:None ~name:"zz" = None);
        match Schema.find s ~qualifier:(Some "t") ~name:"w" with
        | exception Error.Sql_error msg ->
          Alcotest.(check bool) "mentions name" true (String.length msg > 0)
        | _ -> Alcotest.fail "expected error");
    Util.tc "requalify rebinds every column" (fun () ->
        let r = Schema.requalify s "alias" in
        Alcotest.(check bool) "all rebound" true
          (List.for_all (fun c -> c.Schema.table = Some "alias") r);
        (* now the former u.k is ambiguous under the shared alias *)
        match Schema.find_opt r ~qualifier:(Some "alias") ~name:"k" with
        | Some (0, _) -> ()
        | _ -> Alcotest.fail "qualified lookup prefers first match");
    Util.tc "join concatenates and arity adds" (fun () ->
        let j = Schema.join s s in
        Alcotest.(check int) "arity" 8 (Schema.arity j));
    Util.tc "names in order" (fun () ->
        Alcotest.(check (list string)) "names" [ "k"; "v"; "k"; "w" ]
          (Schema.names s));
  ]
