(** The serving layer: scheduler ticks, session isolation, quota
    admission, the wire codec and the socket front-end. *)

open Openivm_engine
module Srv = Openivm_server
module Scheduler = Srv.Scheduler
module Session = Srv.Session
module Quota = Srv.Quota
module Wire = Srv.Wire

let mk_ext ?(strategy = Openivm.Flags.Upsert_linear) ?(refresh = Openivm.Flags.Lazy)
    stmts =
  let db = Database.create () in
  List.iter (fun s -> ignore (Database.exec db s)) stmts;
  let flags = { Openivm.Flags.default with strategy; refresh } in
  Openivm.Runner.load ~flags db

let groups_ddl = "CREATE TABLE g(k VARCHAR, v INTEGER)"
let totals_ddl =
  "CREATE MATERIALIZED VIEW totals AS SELECT k, SUM(v) AS total, COUNT(*) AS \
   n FROM g GROUP BY k"

let expect_msg = function
  | Session.Msg m -> m
  | Session.Failed { code; message } ->
    Alcotest.failf "expected Msg, got Failed [%s] %s" code message
  | _ -> Alcotest.fail "expected Msg reply"

let expect_affected = function
  | Session.Affected n -> n
  | Session.Failed { code; message } ->
    Alcotest.failf "expected Affected, got Failed [%s] %s" code message
  | _ -> Alcotest.fail "expected Affected reply"

let expect_rows = function
  | Session.Rows { rows; _ } -> List.sort String.compare rows
  | Session.Failed { code; message } ->
    Alcotest.failf "expected Rows, got Failed [%s] %s" code message
  | _ -> Alcotest.fail "expected Rows reply"

let find_view ext name =
  match Openivm.Runner.find_view ext name with
  | Some v -> v
  | None -> Alcotest.failf "view %s not installed" name

(* --- scheduler ----------------------------------------------------- *)

let test_single_session_roundtrip () =
  let ext = mk_ext [ groups_ddl ] in
  let sched = Scheduler.create ext in
  let s = Session.create sched ~tenant:"acme" in
  ignore (expect_msg (Session.exec s totals_ddl));
  Alcotest.(check int) "insert" 1
    (expect_affected (Session.exec s "INSERT INTO g VALUES ('a', 5)"));
  Alcotest.(check (list string)) "view rows" [ "(a, 5, 1)" ]
    (expect_rows (Session.exec s "SELECT k, total, n FROM totals"));
  let st = Scheduler.stats sched in
  Alcotest.(check bool) "ticks ran" true (st.Scheduler.ticks >= 2);
  Alcotest.(check int) "units applied" 2 st.Scheduler.units_applied;
  Session.close s

let test_consolidated_tick () =
  let ext = mk_ext [ groups_ddl ] in
  let sched = Scheduler.create ext in
  let s1 = Session.create sched ~tenant:"acme" in
  let s2 = Session.create sched ~tenant:"globex" in
  ignore (expect_msg (Session.exec s1 totals_ddl));
  let v = find_view ext "totals" in
  let refreshes_before = v.Openivm.Runner.refresh_count in
  (* queue both sessions' DML without awaiting, then tick once: both
     units must land in the same tick *)
  let t1 =
    Scheduler.submit sched ~session_id:(Session.id s1) ~tenant:"acme"
      [ "INSERT INTO g VALUES ('x', 1)" ]
  in
  let t2 =
    Scheduler.submit sched ~session_id:(Session.id s2) ~tenant:"globex"
      [ "INSERT INTO g VALUES ('x', 2)" ]
  in
  let ticket = function
    | Scheduler.Queued u -> u
    | Scheduler.Rejected r -> Alcotest.failf "rejected: %s" r
  in
  Alcotest.(check int) "one tick applied both units" 2 (Scheduler.tick sched);
  (match (Scheduler.await sched (ticket t1), Scheduler.await sched (ticket t2))
   with
   | Scheduler.Applied _, Scheduler.Applied _ -> ()
   | _ -> Alcotest.fail "both units should apply");
  let st = Scheduler.stats sched in
  Alcotest.(check int) "tick consolidated two sessions" 1
    st.Scheduler.multi_session_ticks;
  (* lazy view: nothing propagated yet; the first read folds both
     sessions' deltas in ONE propagation *)
  Alcotest.(check int) "no propagation before read" refreshes_before
    v.Openivm.Runner.refresh_count;
  Alcotest.(check (list string)) "consolidated result" [ "(x, 3, 2)" ]
    (expect_rows (Session.exec s1 "SELECT k, total, n FROM totals"));
  Alcotest.(check int) "exactly one propagation" (refreshes_before + 1)
    v.Openivm.Runner.refresh_count;
  Session.close s1;
  Session.close s2

let test_rollback_preserves_other_sessions_deltas () =
  let ext = mk_ext [ groups_ddl ] in
  let sched = Scheduler.create ext in
  let writer = Session.create sched ~tenant:"w" in
  let reader = Session.create sched ~tenant:"r" in
  ignore (expect_msg (Session.exec writer totals_ddl));
  ignore (expect_affected (Session.exec writer "INSERT INTO g VALUES ('a', 5)"));
  (* reader's delta sits queued (not yet ticked) ... *)
  let rt =
    match
      Scheduler.submit sched ~session_id:(Session.id reader) ~tenant:"r"
        [ "INSERT INTO g VALUES ('b', 7)" ]
    with
    | Scheduler.Queued u -> u
    | Scheduler.Rejected r -> Alcotest.failf "rejected: %s" r
  in
  (* ... while the writer's transaction fails mid-unit and rolls back
     in the same tick, AFTER the reader's unit applied *)
  ignore (expect_msg (Session.exec writer "BEGIN"));
  (match Session.exec writer "INSERT INTO g VALUES ('a', 100)" with
   | Session.Queued 1 -> ()
   | _ -> Alcotest.fail "expected buffered statement");
  (match Session.exec writer "INSERT INTO g VALUES ('boom')" with
   | Session.Queued 2 -> ()
   | _ -> Alcotest.fail "expected buffered statement");
  (match Session.exec writer "COMMIT" with
   | Session.Failed _ -> ()
   | _ -> Alcotest.fail "COMMIT of a bad transaction must fail");
  (* the failed unit must not have eaten the reader's queued delta *)
  (match Scheduler.await sched rt with
   | Scheduler.Applied _ -> ()
   | Scheduler.Failed { message; _ } ->
     Alcotest.failf "reader's unit failed: %s" message);
  Alcotest.(check (list string)) "rollback exact, reader delta intact"
    [ "(a, 5, 1)"; "(b, 7, 1)" ]
    (expect_rows (Session.exec reader "SELECT k, total, n FROM totals"));
  let v = find_view ext "totals" in
  Alcotest.(check (list string)) "view = recompute"
    (Openivm.Runner.recompute_rows v)
    (Openivm.Runner.visible_rows v);
  let st = Scheduler.stats sched in
  Alcotest.(check int) "one rollback counted" 1 st.Scheduler.units_failed;
  Session.close writer;
  Session.close reader

let test_quota_overloaded () =
  let ext = mk_ext [ groups_ddl ] in
  let quota =
    { Quota.default_config with
      Quota.max_queue_depth = 2; max_inflight_per_tenant = 1 }
  in
  let sched = Scheduler.create ~quota ext in
  let submit tenant =
    Scheduler.submit sched ~session_id:1 ~tenant
      [ "INSERT INTO g VALUES ('q', 1)" ]
  in
  (match submit "acme" with
   | Scheduler.Queued _ -> ()
   | Scheduler.Rejected r -> Alcotest.failf "first submit rejected: %s" r);
  (* per-tenant cap: acme already has one in flight *)
  (match submit "acme" with
   | Scheduler.Rejected _ -> ()
   | Scheduler.Queued _ -> Alcotest.fail "tenant cap should reject");
  (match submit "globex" with
   | Scheduler.Queued _ -> ()
   | Scheduler.Rejected r -> Alcotest.failf "other tenant rejected: %s" r);
  (* global queue depth cap: 2 pending *)
  (match submit "initech" with
   | Scheduler.Rejected _ -> ()
   | Scheduler.Queued _ -> Alcotest.fail "queue cap should reject");
  let st = Scheduler.stats sched in
  Alcotest.(check int) "overloads counted" 2 st.Scheduler.overloaded;
  (* the session API surfaces it as a typed reply *)
  let s = Session.create sched ~tenant:"acme" in
  (match Session.exec s "INSERT INTO g VALUES ('q', 2)" with
   | Session.Overloaded _ -> ()
   | _ -> Alcotest.fail "expected Overloaded reply");
  (* after a tick drains the queue, admission recovers *)
  ignore (Scheduler.tick sched);
  (match Session.exec s "INSERT INTO g VALUES ('q', 3)" with
   | Session.Affected 1 -> ()
   | _ -> Alcotest.fail "admission should recover after the tick");
  Session.close s

let test_lazy_refresh_once_per_tick_concurrent_readers () =
  (* full_recompute is the strategy where a read-triggered refresh is
     maximally expensive: an ungated implementation recomputes on every
     read. The tick gate must bound it to once per tick. *)
  let ext = mk_ext ~strategy:Openivm.Flags.Full_recompute [ groups_ddl ] in
  let sched = Scheduler.create ext in
  let s = Session.create sched ~tenant:"acme" in
  ignore (expect_msg (Session.exec s totals_ddl));
  let v = find_view ext "totals" in
  let read_round () =
    let threads =
      List.init 8 (fun _ ->
          Thread.create
            (fun () ->
              ignore
                (Scheduler.read sched
                   (match
                      Openivm_sql.Parser.parse_statement
                        "SELECT k, total FROM totals"
                    with
                   | Openivm_sql.Ast.Select_stmt q -> q
                   | _ -> assert false)))
            ())
    in
    List.iter Thread.join threads
  in
  ignore (expect_affected (Session.exec s "INSERT INTO g VALUES ('a', 1)"));
  let before = v.Openivm.Runner.refresh_count in
  read_round ();
  Alcotest.(check int) "8 concurrent readers, one refresh" (before + 1)
    v.Openivm.Runner.refresh_count;
  (* next tick re-arms the gate: exactly one more refresh *)
  ignore (expect_affected (Session.exec s "INSERT INTO g VALUES ('a', 2)"));
  read_round ();
  Alcotest.(check int) "next tick, one more refresh" (before + 2)
    v.Openivm.Runner.refresh_count;
  Alcotest.(check (list string)) "contents correct" [ "(a, 3, 2)" ]
    (expect_rows (Session.exec s "SELECT k, total, n FROM totals"));
  Session.close s

let test_eager_views_refresh_at_tick_end () =
  let ext = mk_ext ~refresh:Openivm.Flags.Eager [ groups_ddl ] in
  let sched = Scheduler.create ext in
  let s = Session.create sched ~tenant:"acme" in
  ignore (expect_msg (Session.exec s totals_ddl));
  let v = find_view ext "totals" in
  let before = v.Openivm.Runner.refresh_count in
  ignore (expect_affected (Session.exec s "INSERT INTO g VALUES ('e', 9)"));
  (* requested-eager: the tick itself propagated, no read needed *)
  Alcotest.(check int) "tick refreshed the eager view" (before + 1)
    v.Openivm.Runner.refresh_count;
  Alcotest.(check int) "no pending deltas left" 0 v.Openivm.Runner.pending_deltas;
  Session.close s

let test_ddl_refused_in_txn () =
  let ext = mk_ext [ groups_ddl ] in
  let sched = Scheduler.create ext in
  let s = Session.create sched ~tenant:"acme" in
  ignore (expect_msg (Session.exec s "BEGIN"));
  (match Session.exec s "CREATE TABLE t2(a INTEGER)" with
   | Session.Failed { code = "TXN"; _ } -> ()
   | _ -> Alcotest.fail "DDL inside a transaction must be refused");
  ignore (expect_msg (Session.exec s "ROLLBACK"));
  Session.close s

(* --- wire codec ---------------------------------------------------- *)

let test_wire_roundtrip () =
  let reqs =
    [ Wire.Hello "acme"; Wire.Sql "SELECT 1;\nSELECT 2"; Wire.Begin;
      Wire.Commit; Wire.Rollback; Wire.Ping; Wire.Quit ]
  in
  List.iter
    (fun req ->
      match Wire.parse_request (Wire.render_request req) with
      | Ok got ->
        Alcotest.(check bool) "request roundtrip" true (got = req)
      | Error msg -> Alcotest.failf "parse_request failed: %s" msg)
    reqs;
  let resps =
    [ Wire.Session 7; Wire.Ok_affected 3; Wire.Queued 2; Wire.Msg "COMMIT";
      Wire.Rows { cols = [ "k"; "total" ]; rows = [ "(a, 5)"; "(b,\n7)" ] };
      Wire.Rows { cols = []; rows = [] };
      Wire.Err { code = "SQL"; message = "boom\nwith newline" };
      Wire.Overloaded "queue full"; Wire.Pong; Wire.Bye ]
  in
  List.iter
    (fun resp ->
      let lines = ref (Wire.render_response resp) in
      let next_line () =
        match !lines with
        | [] -> None
        | l :: rest ->
          lines := rest;
          Some l
      in
      match Wire.parse_response ~next_line with
      | Ok got -> Alcotest.(check bool) "response roundtrip" true (got = resp)
      | Error msg -> Alcotest.failf "parse_response failed: %s" msg)
    resps

let test_wire_errors () =
  (match Wire.parse_request "FROBNICATE 1" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown verb must not parse");
  (match Wire.parse_request "HELLO" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "HELLO without tenant must not parse");
  let truncated = ref [ "ROWS 2 k"; "ROW (a, 1)" ] in
  let next_line () =
    match !truncated with
    | [] -> None
    | l :: rest ->
      truncated := rest;
      Some l
  in
  match Wire.parse_response ~next_line with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated ROWS frame must not parse"

(* --- the socket front-end ------------------------------------------ *)

let with_server ?quota f =
  let ext = mk_ext [ groups_ddl ] in
  let srv = Srv.Server.start ?quota ~listen:(`Tcp ("127.0.0.1", 0)) ext in
  Fun.protect ~finally:(fun () -> Srv.Server.stop srv) (fun () -> f srv)

let connect srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Srv.Server.port srv));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let recv ic =
  let next_line () = try Some (input_line ic) with End_of_file -> None in
  match Wire.parse_response ~next_line with
  | Ok r -> r
  | Error msg -> Alcotest.failf "bad response: %s" msg

let test_server_tcp_session () =
  with_server (fun srv ->
      let fd, ic, oc = connect srv in
      send_line oc "HELLO acme";
      (match recv ic with
       | Wire.Session _ -> ()
       | _ -> Alcotest.fail "expected SESSION");
      send_line oc ("SQL " ^ Wire.escape totals_ddl);
      (match recv ic with
       | Wire.Msg _ -> ()
       | _ -> Alcotest.fail "expected MSG for install");
      send_line oc "SQL INSERT INTO g VALUES ('a', 5)";
      (match recv ic with
       | Wire.Ok_affected 1 -> ()
       | _ -> Alcotest.fail "expected OK 1");
      send_line oc "SQL SELECT k, total FROM totals";
      (match recv ic with
       | Wire.Rows { rows = [ "(a, 5)" ]; _ } -> ()
       | _ -> Alcotest.fail "expected the view row");
      send_line oc "PING";
      (match recv ic with
       | Wire.Pong -> ()
       | _ -> Alcotest.fail "expected PONG");
      send_line oc "QUIT";
      (match recv ic with
       | Wire.Bye -> ()
       | _ -> Alcotest.fail "expected BYE");
      (try Unix.close fd with Unix.Unix_error _ -> ()))

let http_get srv path =
  let fd, ic, oc = connect srv in
  send_line oc (Printf.sprintf "GET %s HTTP/1.1\r" path);
  send_line oc "Host: localhost\r";
  send_line oc "\r";
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_string buf (input_line ic);
       Buffer.add_char buf '\n'
     done
   with End_of_file -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Buffer.contents buf

let test_metrics_endpoint () =
  with_server (fun srv ->
      let fd, ic, oc = connect srv in
      send_line oc "HELLO acme";
      (match recv ic with Wire.Session _ -> () | _ -> Alcotest.fail "session");
      send_line oc "SQL INSERT INTO g VALUES ('m', 1)";
      (match recv ic with Wire.Ok_affected 1 -> () | _ -> Alcotest.fail "ok");
      let body = http_get srv "/metrics" in
      Alcotest.(check bool) "HTTP 200" true
        (String.length body > 0
         && String.sub body 0 15 = "HTTP/1.1 200 OK");
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "prometheus content type" true
        (contains Openivm_obs.Report.prometheus_content_type body);
      Alcotest.(check bool) "tick counter exposed" true
        (contains "openivm_server_ticks_total" body);
      Alcotest.(check bool) "sessions gauge exposed" true
        (contains "openivm_server_sessions_active" body);
      let missing = http_get srv "/nope" in
      Alcotest.(check bool) "404 for other paths" true
        (contains "404" missing);
      send_line oc "QUIT";
      (match recv ic with Wire.Bye -> () | _ -> Alcotest.fail "bye");
      (try Unix.close fd with Unix.Unix_error _ -> ()))

let test_server_background_ticker () =
  let quota = { Quota.default_config with Quota.tick_interval = 0.01 } in
  with_server ~quota (fun srv ->
      let fd, ic, oc = connect srv in
      send_line oc "HELLO acme";
      (match recv ic with Wire.Session _ -> () | _ -> Alcotest.fail "session");
      send_line oc "SQL INSERT INTO g VALUES ('t', 1)";
      (match recv ic with
       | Wire.Ok_affected 1 -> ()
       | _ -> Alcotest.fail "ticker should apply the queued unit");
      send_line oc "QUIT";
      (match recv ic with Wire.Bye -> () | _ -> Alcotest.fail "bye");
      (try Unix.close fd with Unix.Unix_error _ -> ()))

let suite =
  [ Util.tc "single session roundtrip" test_single_session_roundtrip;
    Util.tc "two sessions consolidate into one tick" test_consolidated_tick;
    Util.tc "rollback preserves other sessions' deltas"
      test_rollback_preserves_other_sessions_deltas;
    Util.tc "quota surfaces Overloaded and recovers" test_quota_overloaded;
    Util.tc "lazy refresh once per tick under concurrent readers"
      test_lazy_refresh_once_per_tick_concurrent_readers;
    Util.tc "eager views refresh at tick end" test_eager_views_refresh_at_tick_end;
    Util.tc "DDL refused inside a transaction" test_ddl_refused_in_txn;
    Util.tc "wire codec roundtrip" test_wire_roundtrip;
    Util.tc "wire codec rejects malformed frames" test_wire_errors;
    Util.tc "tcp session end to end" test_server_tcp_session;
    Util.tc "/metrics serves prometheus exposition" test_metrics_endpoint;
    Util.tc "background ticker drives refresh" test_server_background_ticker ]
