open Openivm_engine

let catalog () =
  Database.catalog
    (Util.db_with
       [ "CREATE TABLE t(k VARCHAR, v INTEGER)";
         "CREATE TABLE u(k VARCHAR, w INTEGER)" ])

let analyze sql =
  Openivm.Shape.analyze (catalog ()) ~view_name:"v"
    (Openivm_sql.Parser.parse_select sql)

let accepts sql () =
  match analyze sql with
  | Ok _ -> ()
  | Error reason -> Alcotest.failf "rejected %S: %s" sql reason

let rejects sql () =
  match analyze sql with
  | Ok _ -> Alcotest.failf "accepted %S" sql
  | Error _ -> ()

let suite =
  [ Util.tc "accepts projection" (accepts "SELECT k, v FROM t");
    Util.tc "accepts filter" (accepts "SELECT k FROM t WHERE v > 3");
    Util.tc "accepts computed projection" (accepts "SELECT v + 1 AS x FROM t");
    Util.tc "accepts sum/count group" (accepts "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY k");
    Util.tc "accepts min/max group" (accepts "SELECT k, MIN(v) AS lo FROM t GROUP BY k");
    Util.tc "accepts avg" (accepts "SELECT k, AVG(v) AS m FROM t GROUP BY k");
    Util.tc "accepts global aggregate" (accepts "SELECT SUM(v) AS s FROM t");
    Util.tc "accepts join" (accepts "SELECT t.k, t.v, u.w FROM t JOIN u ON t.k = u.k");
    Util.tc "accepts join aggregate"
      (accepts "SELECT u.k, SUM(t.v) AS s FROM t JOIN u ON t.k = u.k GROUP BY u.k");
    Util.tc "accepts group by expression"
      (accepts "SELECT v % 10 AS bucket, COUNT(*) AS n FROM t GROUP BY v % 10");
    Util.tc "accepts star projection" (accepts "SELECT * FROM t");
    Util.tc "rejects DISTINCT" (rejects "SELECT DISTINCT k FROM t");
    Util.tc "rejects ORDER BY" (rejects "SELECT k FROM t ORDER BY k");
    Util.tc "rejects LIMIT" (rejects "SELECT k FROM t LIMIT 3");
    Util.tc "rejects HAVING" (rejects "SELECT k, SUM(v) AS s FROM t GROUP BY k HAVING SUM(v) > 0");
    Util.tc "rejects CTE" (rejects "WITH c AS (SELECT 1 AS one) SELECT one FROM c");
    Util.tc "rejects set operation" (rejects "SELECT k FROM t UNION SELECT k FROM u");
    Util.tc "rejects derived table" (rejects "SELECT q.k FROM (SELECT k FROM t) AS q");
    Util.tc "accepts three-way join (extension)"
      (accepts "SELECT a.k, b.w, c.v FROM t a JOIN u b ON a.k = b.k JOIN t c ON b.k = c.k");
    Util.tc "rejects five-way join"
      (rejects
         "SELECT a.k FROM t a JOIN u b ON a.k = b.k JOIN t c ON b.k = c.k           JOIN u d ON c.k = d.k JOIN t e ON d.k = e.k");
    Util.tc "rejects outer join" (rejects "SELECT t.k FROM t LEFT JOIN u ON t.k = u.k");
    Util.tc "rejects distinct aggregate" (rejects "SELECT k, COUNT(DISTINCT v) AS n FROM t GROUP BY k");
    Util.tc "rejects expression over aggregate"
      (rejects "SELECT k, SUM(v) + 1 AS s FROM t GROUP BY k");
    Util.tc "rejects unprojected group key" (rejects "SELECT SUM(v) AS s FROM t GROUP BY k");
    Util.tc "rejects duplicate output names" (rejects "SELECT k, v AS k FROM t");
    Util.tc "classification strings" (fun () ->
        let klass sql =
          match analyze sql with
          | Ok shape ->
            Openivm_sql.Analysis.class_to_string shape.Openivm.Shape.klass
          | Error e -> "error: " ^ e
        in
        Alcotest.(check string) "projection" "projection" (klass "SELECT k FROM t");
        Alcotest.(check string) "filter" "filter" (klass "SELECT k FROM t WHERE v > 1");
        Alcotest.(check string) "agg" "group_aggregate"
          (klass "SELECT k, SUM(v) AS s FROM t GROUP BY k");
        Alcotest.(check string) "join" "join"
          (klass "SELECT t.k, u.w FROM t JOIN u ON t.k = u.k");
        Alcotest.(check string) "join agg" "join_aggregate"
          (klass "SELECT u.k, COUNT(*) AS n FROM t JOIN u ON t.k = u.k GROUP BY u.k"));
    Util.tc "shape: group cols and aggregates split" (fun () ->
        match analyze "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY k" with
        | Ok shape ->
          Alcotest.(check int) "groups" 1 (List.length (Openivm.Shape.group_cols shape));
          Alcotest.(check int) "aggs" 2 (List.length (Openivm.Shape.aggregates shape));
          Alcotest.(check bool) "not global" false (Openivm.Shape.is_global shape);
          Alcotest.(check bool) "no minmax" false (Openivm.Shape.has_min_max shape)
        | Error e -> Alcotest.fail e);
    Util.tc "shape: global flag" (fun () ->
        match analyze "SELECT SUM(v) AS s FROM t" with
        | Ok shape -> Alcotest.(check bool) "global" true (Openivm.Shape.is_global shape)
        | Error e -> Alcotest.fail e);
    Util.tc "shape: visible names in projection order" (fun () ->
        match analyze "SELECT SUM(v) AS s, k FROM t GROUP BY k" with
        | Ok shape ->
          Alcotest.(check (list string)) "names" [ "s"; "k" ]
            (Openivm.Shape.visible_names shape)
        | Error e -> Alcotest.fail e);
  ]
