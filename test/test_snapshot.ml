open Openivm_engine

let with_temp_dir f =
  let dir = Filename.temp_file "openivm_snap" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
        if Sys.file_exists dir then begin
          Array.iter
            (fun entry -> Sys.remove (Filename.concat dir entry))
            (Sys.readdir dir);
          Sys.rmdir dir
        end)
    (fun () -> f dir)

let suite =
  [ Util.tc "save/load round-trips tables, keys and indexes" (fun () ->
        with_temp_dir (fun dir ->
            let db =
              Util.db_with
                [ "CREATE TABLE t(id INTEGER PRIMARY KEY, name VARCHAR, f \
                   DOUBLE, d DATE)";
                  "CREATE INDEX idx_name ON t(name)";
                  "INSERT INTO t VALUES (1, 'a,b', 1.5, '2024-01-01'), (2, \
                   NULL, NULL, NULL)" ]
            in
            Alcotest.(check int) "tables saved" 1 (Snapshot.save db ~dir);
            let db2 = Snapshot.load ~dir in
            Alcotest.(check (list string)) "rows"
              (Util.sorted_rows db "SELECT * FROM t")
              (Util.sorted_rows db2 "SELECT * FROM t");
            (* the PK survives: duplicate insert must fail *)
            (match Database.exec db2 "INSERT INTO t VALUES (1, 'x', 0, NULL)" with
             | exception Error.Sql_error _ -> ()
             | _ -> Alcotest.fail "pk not restored");
            (* the secondary index survives and is used *)
            let tbl = Catalog.find_table (Database.catalog db2) "t" in
            Alcotest.(check bool) "index restored" true
              (Table.find_secondary tbl "idx_name" <> None)));
    Util.tc "snapshot of an IVM database restores view + delta tables" (fun () ->
        with_temp_dir (fun dir ->
            let db =
              Util.db_with
                [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
                  "INSERT INTO groups VALUES ('a', 1), ('b', 2)" ]
            in
            let v =
              Openivm.Runner.install db
                "CREATE MATERIALIZED VIEW qg AS SELECT group_index, \
                 SUM(group_value) AS s FROM groups GROUP BY group_index"
            in
            Util.exec db "INSERT INTO groups VALUES ('a', 10)";
            Openivm.Runner.refresh v;
            ignore (Snapshot.save db ~dir);
            let db2 = Snapshot.load ~dir in
            (* the materialized contents and metadata traveled *)
            Util.check_rows db2 "SELECT group_index, s FROM qg"
              [ "(a, 11)"; "(b, 2)" ];
            Util.check_scalar db2
              "SELECT COUNT(*) FROM _openivm_views WHERE view_name = 'qg'" "1";
            (* the stored propagation script still runs on the restored db *)
            Util.exec db2
              "INSERT INTO delta_qg__groups VALUES ('c', 7, TRUE)";
            let stored =
              Database.query db2
                "SELECT sql FROM _openivm_scripts WHERE view_name = 'qg' \
                 ORDER BY step"
            in
            List.iter
              (fun (row : Row.t) ->
                 Util.exec db2 (Value.to_string row.(0)))
              stored.Database.rows;
            Util.check_rows db2 "SELECT group_index, s FROM qg"
              [ "(a, 11)"; "(b, 2)"; "(c, 7)" ]));
    Util.tc "loading a missing snapshot fails cleanly" (fun () ->
        match Snapshot.load ~dir:"/nonexistent/snapshot/dir" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected error");
    Util.tc "a raising hook discards the deferred refresh queue" (fun () ->
        (* eager refreshes run deferred, after the outermost trigger
           dispatch; if a later hook aborts the statement those deferred
           callbacks must not fire over half-applied state — and must not
           linger to fire under some future, unrelated statement *)
        let db =
          Util.db_with
            [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
              "INSERT INTO groups VALUES ('a', 1)" ]
        in
        let eager =
          { Openivm.Flags.default with Openivm.Flags.refresh = Openivm.Flags.Eager }
        in
        let v =
          Openivm.Runner.install ~flags:eager db
            "CREATE MATERIALIZED VIEW qg AS SELECT group_index, \
             SUM(group_value) AS s FROM groups GROUP BY group_index"
        in
        let exception Veto in
        (* registered after the IVM capture hook, so the eager refresh is
           already queued when this fires *)
        Trigger.register (Database.triggers db) ~table:"groups" ~name:"veto"
          (fun _ -> raise Veto);
        (match Database.exec db "INSERT INTO groups VALUES ('b', 2)" with
         | exception Veto -> ()
         | _ -> Alcotest.fail "expected the veto to propagate");
        Alcotest.(check int) "no ghost refresh queued" 0
          (Trigger.pending_deferred (Database.triggers db));
        Alcotest.(check int) "deferred refresh never fired" 0
          v.Openivm.Runner.refresh_count;
        (* the engine applied the row before hooks fired; the view still
           converges once refreshed through the normal path *)
        Trigger.unregister (Database.triggers db) ~name:"veto";
        Openivm.Runner.refresh v;
        Util.check_view_consistent db v);
    Util.tc "ART secondary indexes answer correctly after mid-batch restore"
      (fun () ->
         (* the serving layer's rollback path: capture, half-apply a unit
            that churns indexed keys, restore. Point lookups afterwards go
            through the ART secondary — a restore that truncated rows but
            left stale index entries (or dropped fresh ones) answers these
            queries wrongly even though a full scan would look fine *)
         let db =
           Util.db_with
             [ "CREATE TABLE t(id INTEGER PRIMARY KEY, name VARCHAR, v INTEGER)";
               "CREATE INDEX idx_name ON t(name)";
               "INSERT INTO t VALUES (1, 'alice', 10), (2, 'bob', 20), (3, \
                'alice', 30)" ]
         in
         let memo = Snapshot.capture db ~tables:[ "t" ] in
         Util.exec db "INSERT INTO t VALUES (4, 'carol', 40), (5, 'alice', 50)";
         Util.exec db "DELETE FROM t WHERE name = 'bob'";
         Util.exec db "UPDATE t SET name = 'dave' WHERE id = 1";
         Snapshot.restore db memo;
         Util.check_rows ~msg:"captured keys still indexed" db
           "SELECT id, v FROM t WHERE name = 'alice'" [ "(1, 10)"; "(3, 30)" ];
         Util.check_rows ~msg:"deleted-then-restored key answers" db
           "SELECT id FROM t WHERE name = 'bob'" [ "(2)" ];
         Util.check_rows ~msg:"rolled-back insert leaves no ghost entry" db
           "SELECT id FROM t WHERE name = 'carol'" [];
         Util.check_rows ~msg:"rolled-back update leaves no moved entry" db
           "SELECT id FROM t WHERE name = 'dave'" [];
         let tbl = Catalog.find_table (Database.catalog db) "t" in
         Alcotest.(check bool) "secondary index object survives restore" true
           (Table.find_secondary tbl "idx_name" <> None);
         (* and the index keeps being maintained after the restore *)
         Util.exec db "INSERT INTO t VALUES (6, 'erin', 60)";
         Util.check_rows ~msg:"index maintained post-restore" db
           "SELECT id FROM t WHERE name = 'erin'" [ "(6)" ];
         (match Database.exec db "INSERT INTO t VALUES (1, 'dup', 0)" with
          | exception Error.Sql_error _ -> ()
          | _ -> Alcotest.fail "pk uniqueness lost after restore"));
    Util.tc "restore during a dispatch clears deferred refreshes" (fun () ->
        (* the HTAP bridge's transactional apply in miniature: snapshot,
           apply, and on a mid-batch failure restore — any eager refresh
           deferred by the half-applied statement must vanish with the
           rollback instead of firing over restored state *)
        let db =
          Util.db_with
            [ "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)";
              "INSERT INTO groups VALUES ('a', 1)" ]
        in
        let eager =
          { Openivm.Flags.default with Openivm.Flags.refresh = Openivm.Flags.Eager }
        in
        let v =
          Openivm.Runner.install ~flags:eager db
            "CREATE MATERIALIZED VIEW qg AS SELECT group_index, \
             SUM(group_value) AS s FROM groups GROUP BY group_index"
        in
        let memo =
          Snapshot.capture db ~tables:[ "groups"; "delta_qg__groups" ]
        in
        let saw_deferred = ref (-1) in
        Trigger.register (Database.triggers db) ~table:"groups"
          ~name:"rollback" (fun _ ->
              saw_deferred :=
                Trigger.pending_deferred (Database.triggers db);
              Snapshot.restore db memo);
        Util.exec db "INSERT INTO groups VALUES ('b', 2)";
        Alcotest.(check int) "the eager refresh had been queued" 1
          !saw_deferred;
        Alcotest.(check int) "rollback dropped it" 0
          v.Openivm.Runner.refresh_count;
        Alcotest.(check int) "queue empty after the dispatch" 0
          (Trigger.pending_deferred (Database.triggers db));
        Util.check_rows db "SELECT * FROM groups" [ "(a, 1)" ];
        Trigger.unregister (Database.triggers db) ~name:"rollback";
        Openivm.Runner.refresh v;
        Util.check_view_consistent db v);
  ]
