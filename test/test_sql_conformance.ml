(** A semantics matrix of small SQL cases — each one a distinct behaviour
    of the engine (NULL handling, coercions, aggregate edge cases, scoping)
    that the IVM scripts rely on. One table, many probes. *)

open Openivm_engine

let db () =
  Util.db_with
    [ "CREATE TABLE n(a INTEGER, b INTEGER)";
      "INSERT INTO n VALUES (1, 10), (2, NULL), (NULL, 30), (NULL, NULL), (2, 20)" ]

let scalar sql expected () = Util.check_scalar (db ()) sql expected

let rows sql expected () = Util.check_rows (db ()) sql expected

let suite =
  [ (* aggregates over NULLs *)
    Util.tc "count star counts null rows" (scalar "SELECT COUNT(*) FROM n" "5");
    Util.tc "count column skips nulls" (scalar "SELECT COUNT(a) FROM n" "3");
    Util.tc "sum skips nulls" (scalar "SELECT SUM(b) FROM n" "60");
    Util.tc "sum of all-null slice is null"
      (scalar "SELECT SUM(b) FROM n WHERE a = 2 AND b IS NULL" "NULL");
    Util.tc "avg ignores nulls"
      (scalar "SELECT AVG(b) FROM n" "20.0");
    Util.tc "min/max ignore nulls"
      (scalar "SELECT MIN(b) FROM n" "10");
    Util.tc "aggregates of empty input"
      (rows "SELECT COUNT(*), COUNT(a), SUM(a), MIN(a), AVG(a) FROM n WHERE a > 99"
         [ "(0, 0, NULL, NULL, NULL)" ]);
    (* grouping semantics *)
    Util.tc "group by treats nulls as one group"
      (rows "SELECT a, COUNT(*) FROM n GROUP BY a"
         [ "(1, 1)"; "(2, 2)"; "(NULL, 2)" ]);
    Util.tc "group by expression groups computed values"
      (rows "SELECT a + 0, COUNT(*) FROM n GROUP BY a + 0"
         [ "(1, 1)"; "(2, 2)"; "(NULL, 2)" ]);
    Util.tc "having on count"
      (rows "SELECT a FROM n GROUP BY a HAVING COUNT(*) = 2"
         [ "(2)"; "(NULL)" ]);
    Util.tc "having may use a different aggregate than the projection"
      (rows "SELECT a, COUNT(*) FROM n GROUP BY a HAVING SUM(b) > 25"
         [ "(NULL, 2)" ]);
    (* where/filter semantics *)
    Util.tc "where null is excluded" (scalar "SELECT COUNT(*) FROM n WHERE b > 0" "3");
    Util.tc "where not(null) is excluded too"
      (scalar "SELECT COUNT(*) FROM n WHERE NOT (b > 0)" "0");
    Util.tc "is distinct via is null arithmetic"
      (scalar "SELECT COUNT(*) FROM n WHERE a IS NULL AND b IS NULL" "1");
    (* expression corners *)
    Util.tc "integer division by larger int" (scalar "SELECT 1 / 4" "0.25");
    Util.tc "string comparison in where"
      (fun () ->
         let d = Util.db_with
             [ "CREATE TABLE s(x VARCHAR)";
               "INSERT INTO s VALUES ('apple'), ('banana'), ('APPLE')" ] in
         Util.check_scalar d "SELECT COUNT(*) FROM s WHERE x > 'a'" "2");
    Util.tc "case inside aggregate (the IVM sign trick)"
      (scalar
         "SELECT SUM(CASE WHEN b > 15 THEN b ELSE -b END) FROM n WHERE b IS \
          NOT NULL"
         "40");
    Util.tc "coalesce inside addition (the IVM combine trick)"
      (scalar "SELECT COALESCE(NULL, 0) + COALESCE(5, 0)" "5");
    Util.tc "nested case"
      (scalar
         "SELECT CASE WHEN 1 = 2 THEN 'x' ELSE CASE WHEN TRUE THEN 'y' END \
          END"
         "y");
    (* scoping *)
    Util.tc "alias shadows table name"
      (fun () ->
         let d = db () in
         Util.check_scalar d "SELECT COUNT(*) FROM n AS m WHERE m.a = 2" "2");
    Util.tc "self-join scopes stay separate"
      (fun () ->
         let d = db () in
         Util.check_scalar d
           "SELECT COUNT(*) FROM n AS x JOIN n AS y ON x.a = y.b" "0");
    Util.tc "projection alias usable in order by"
      (fun () ->
         let d = db () in
         let r =
           Database.query d
             "SELECT b AS bee FROM n WHERE b IS NOT NULL ORDER BY bee DESC"
         in
         Alcotest.(check (list string)) "order" [ "(30)"; "(20)"; "(10)" ]
           (Util.rows_of r));
    (* insert semantics *)
    Util.tc "insert select respects expression types"
      (fun () ->
         let d = db () in
         Util.exec d "CREATE TABLE out(x DOUBLE)";
         Util.exec d "INSERT INTO out SELECT a / 2 FROM n WHERE a = 1";
         Util.check_rows d "SELECT * FROM out" [ "(0.5)" ]);
    Util.tc "update to null allowed without not-null"
      (fun () ->
         let d = db () in
         Util.exec d "UPDATE n SET b = NULL WHERE a = 1";
         Util.check_scalar d "SELECT COUNT(b) FROM n" "2");
    (* limits and offsets *)
    Util.tc "limit zero yields nothing" (scalar "SELECT COUNT(*) FROM (SELECT a FROM n LIMIT 0) AS q" "0");
    Util.tc "offset beyond end yields nothing"
      (scalar "SELECT COUNT(*) FROM (SELECT a FROM n LIMIT 10 OFFSET 10) AS q" "0");
    (* set ops *)
    Util.tc "union all arity mismatch rejected"
      (fun () ->
         let d = db () in
         match Database.query d "SELECT a FROM n UNION ALL SELECT a, b FROM n" with
         | exception Error.Sql_error _ -> ()
         | _ -> Alcotest.fail "expected arity error");
    Util.tc "intersect of disjoint is empty"
      (scalar
         "SELECT COUNT(*) FROM (SELECT a FROM n WHERE a = 1 INTERSECT SELECT \
          a FROM n WHERE a = 2) AS q"
         "0");
    (* subqueries *)
    Util.tc "in-subquery over expression column"
      (scalar "SELECT COUNT(*) FROM n WHERE b IN (SELECT a * 10 FROM n WHERE a IS NOT NULL)" "2");
    Util.tc "from-subquery aggregates compose"
      (scalar
         "SELECT MAX(s) FROM (SELECT a, SUM(b) AS s FROM n GROUP BY a) AS q"
         "30");
  ]
