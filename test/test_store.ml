(** The durability subsystem: WAL codec and tail repair, checkpoint
    manifests, recovery, staged backfill resume, and the bridge-batch
    journal. Crash points are injected deterministically through
    {!Openivm_htap.Fault.schedule}. *)

open Openivm_engine
module Wal = Openivm_store.Wal
module Checkpoint = Openivm_store.Checkpoint
module Store = Openivm_store.Store
module Fault = Openivm_htap.Fault
module Runner = Openivm.Runner

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "openivm_store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let faults () = Fault.create ~seed:7 Fault.none

let sample_rows : Row.t list =
  [ [| Value.Int 1; Value.Str "a,b\nc"; Value.Float 0.1; Value.Null |];
    [| Value.Int (-2); Value.Str ""; Value.Float (-1e-7); Value.Bool false |];
    [| Value.Date 19000; Value.Float 1e300; Value.Bool true; Value.Int 0 |] ]

let all_payloads : Wal.payload list =
  [ Wal.Stmt "INSERT INTO t VALUES (1, 'x')";
    Wal.Install
      { view_sql = "CREATE MATERIALIZED VIEW v AS SELECT a FROM t";
        chunk_rows = 64; strategy = "upsert_linear"; dialect = "duckdb";
        refresh = "lazy" };
    Wal.Chunk { view = "v"; index = 3 };
    Wal.Batch
      { view = "v"; source = "t"; seq = 12; replica = true;
        rows = sample_rows };
    Wal.Batch { view = "v"; source = "t"; seq = 13; replica = false;
                rows = [] } ]

let payload_strings ps = List.map Wal.payload_to_string ps

let install_sql =
  "CREATE MATERIALIZED VIEW qg AS SELECT group_index, SUM(group_value) AS \
   s FROM groups GROUP BY group_index"

let seed_store ?faults ?chunk_rows dir : Store.t =
  let store = Store.open_ ?faults ?chunk_rows ~dir () in
  ignore
    (Store.exec store
       "CREATE TABLE groups(group_index VARCHAR, group_value INTEGER)");
  store

let qg_rows store =
  match Store.find_view store "qg" with
  | Some v -> Runner.visible_rows v
  | None -> Alcotest.fail "view qg not found"

let suite =
  [ Util.tc "wal: every payload kind round-trips" (fun () ->
        with_temp_dir (fun dir ->
            let path = Filename.concat dir "wal.log" in
            let w = Wal.openw ~path ~next_seq:5 () in
            List.iter (fun p -> ignore (Wal.append w p)) all_payloads;
            Wal.close w;
            let r = Wal.read ~path in
            Alcotest.(check bool) "not torn" false r.Wal.torn;
            Alcotest.(check (list int)) "seqs"
              [ 5; 6; 7; 8; 9 ]
              (List.map (fun rec_ -> rec_.Wal.seq) r.Wal.records);
            Alcotest.(check (list string)) "payloads"
              (payload_strings all_payloads)
              (payload_strings
                 (List.map (fun rec_ -> rec_.Wal.payload) r.Wal.records))));
    Util.tc "wal: float payloads survive bit-exact" (fun () ->
        with_temp_dir (fun dir ->
            let path = Filename.concat dir "wal.log" in
            let floats =
              [ 0.1; -0.1; 1.0 /. 3.0; 1e300; -2.5e-10; Float.min_float;
                0.30000000000000004 ]
            in
            let row = Array.of_list (List.map (fun f -> Value.Float f) floats) in
            let w = Wal.openw ~path ~next_seq:1 () in
            ignore
              (Wal.append w
                 (Wal.Batch { view = "v"; source = "t"; seq = 1;
                              replica = false; rows = [ row ] }));
            Wal.close w;
            match (Wal.read ~path).Wal.records with
            | [ { Wal.payload = Wal.Batch { rows = [ row' ]; _ }; _ } ] ->
              List.iteri
                (fun i f ->
                   match row'.(i) with
                   | Value.Float f' ->
                     Alcotest.(check int64)
                       (Printf.sprintf "bits of %h" f)
                       (Int64.bits_of_float f) (Int64.bits_of_float f')
                   | v -> Alcotest.fail (Value.to_string v))
                floats
            | _ -> Alcotest.fail "expected one batch record"));
    Util.tc "wal: torn tail is discarded and repaired" (fun () ->
        with_temp_dir (fun dir ->
            let path = Filename.concat dir "wal.log" in
            let f = faults () in
            let w = Wal.openw ~faults:f ~path ~next_seq:1 () in
            ignore (Wal.append w (Wal.Stmt "one"));
            ignore (Wal.append w (Wal.Stmt "two"));
            Fault.schedule f Fault.Torn_tail ~after:0;
            (match Wal.append w (Wal.Stmt "three") with
             | exception Fault.Injected_crash -> ()
             | _ -> Alcotest.fail "expected injected crash");
            let r = Wal.repair ~path in
            Alcotest.(check bool) "torn" true r.Wal.torn;
            Alcotest.(check (list string)) "valid prefix survives"
              [ "stmt \"one\""; "stmt \"two\"" ]
              (payload_strings
                 (List.map (fun rec_ -> rec_.Wal.payload) r.Wal.records));
            (* the repaired log accepts appends again *)
            let w2 = Wal.openw ~path ~next_seq:3 () in
            ignore (Wal.append w2 (Wal.Stmt "three again"));
            Wal.close w2;
            let r2 = Wal.read ~path in
            Alcotest.(check bool) "clean after repair" false r2.Wal.torn;
            Alcotest.(check int) "records" 3 (List.length r2.Wal.records)));
    Util.tc "wal: truncated header and corrupt record are both torn tails"
      (fun () ->
         List.iter
           (fun kind ->
              with_temp_dir (fun dir ->
                  let path = Filename.concat dir "wal.log" in
                  let f = faults () in
                  let w = Wal.openw ~faults:f ~path ~next_seq:1 () in
                  ignore (Wal.append w (Wal.Stmt "keep"));
                  Fault.schedule f kind ~after:0;
                  (match Wal.append w (Wal.Stmt "lose") with
                   | exception Fault.Injected_crash -> ()
                   | _ -> Alcotest.fail "expected injected crash");
                  let r = Wal.read ~path in
                  Alcotest.(check bool)
                    (Fault.kind_to_string kind ^ " torn") true r.Wal.torn;
                  Alcotest.(check int)
                    (Fault.kind_to_string kind ^ " prefix") 1
                    (List.length r.Wal.records)))
           [ Fault.Truncated_record; Fault.Corrupt_record ]);
    Util.tc "wal: sequence numbers stay monotonic across truncation"
      (fun () ->
         with_temp_dir (fun dir ->
             let path = Filename.concat dir "wal.log" in
             let w = Wal.openw ~path ~next_seq:1 () in
             ignore (Wal.append w (Wal.Stmt "a"));
             ignore (Wal.append w (Wal.Stmt "b"));
             Wal.truncate w;
             let seq = Wal.append w (Wal.Stmt "c") in
             Wal.close w;
             Alcotest.(check int) "seq continues" 3 seq;
             match (Wal.read ~path).Wal.records with
             | [ r ] -> Alcotest.(check int) "only the new record" 3 r.Wal.seq
             | rs -> Alcotest.fail (string_of_int (List.length rs))));
    Util.tc "checkpoint: save/load round-trip and manifest validation"
      (fun () ->
         with_temp_dir (fun dir ->
             let db =
               Util.db_with
                 [ "CREATE TABLE t(a INTEGER, s VARCHAR)";
                   "INSERT INTO t VALUES (1, 'x'), (2, NULL)" ]
             in
             let p1 = Checkpoint.save db ~dir ~last_seq:4 in
             Alcotest.(check (option int)) "valid" (Some 4)
               (Checkpoint.validate p1);
             Util.exec db "INSERT INTO t VALUES (3, 'y')";
             let p2 = Checkpoint.save db ~dir ~last_seq:9 in
             (match Checkpoint.load_latest ~dir with
              | Some (db2, seq) ->
                Alcotest.(check int) "newest" 9 seq;
                Alcotest.(check (list string)) "rows"
                  (Util.sorted_rows db "SELECT * FROM t")
                  (Util.sorted_rows db2 "SELECT * FROM t")
              | None -> Alcotest.fail "no checkpoint loaded");
             (* corrupt a CSV in the newest checkpoint: recovery must fall
                back to the older one *)
             let oc = open_out_gen [ Open_append ] 0o644
                 (Filename.concat p2 "t.csv") in
             output_string oc "garbage\n";
             close_out oc;
             (match Checkpoint.load_latest ~dir with
              | Some (db3, seq) ->
                Alcotest.(check int) "fell back" 4 seq;
                Alcotest.(check int) "older contents" 2
                  (Database.query_int db3 "SELECT COUNT(*) FROM t")
              | None -> Alcotest.fail "expected fallback");
             Checkpoint.prune ~dir ~keep:1;
             Alcotest.(check int) "pruned" 1
               (List.length (Checkpoint.list ~dir))));
    Util.tc "store: committed statements survive reopen" (fun () ->
        with_temp_dir (fun dir ->
            let store = seed_store dir in
            ignore
              (Store.exec store
                 "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
            let v =
              match Store.exec store install_sql with
              | `Installed v -> v
              | _ -> Alcotest.fail "expected install"
            in
            ignore (Store.exec store "INSERT INTO groups VALUES ('a', 10)");
            Runner.refresh v;
            let expected = Runner.visible_rows v in
            Store.close store;
            let store2 = Store.open_ ~dir () in
            let info = Store.last_recovery store2 in
            Alcotest.(check int) "reattached via ledger" 0
              info.Store.views_reattached;
            Alcotest.(check bool) "replayed the log" true
              (info.Store.replayed > 0);
            Alcotest.(check (list string)) "view contents" expected
              (qg_rows store2);
            Alcotest.(check bool) "verified" true (Store.verify store2);
            (* the store keeps accepting work after recovery *)
            ignore (Store.exec store2 "INSERT INTO groups VALUES ('c', 5)");
            Alcotest.(check bool) "still consistent" true
              (Store.verify store2);
            Store.close store2));
    Util.tc "store: staged backfill chunks and finishes the ledger"
      (fun () ->
         with_temp_dir (fun dir ->
             let store = seed_store ~chunk_rows:3 dir in
             for i = 1 to 10 do
               ignore
                 (Store.exec store
                    (Printf.sprintf
                       "INSERT INTO groups VALUES ('g%d', %d)" (i mod 4) i))
             done;
             (match Store.exec store install_sql with
              | `Installed v ->
                Alcotest.(check int) "chunk math" 4
                  (Runner.backfill_total_chunks v ~chunk_rows:3);
                Alcotest.(check bool) "chunkable" true
                  (Runner.backfill_chunkable v)
              | _ -> Alcotest.fail "expected install");
             Util.check_scalar (Store.db store)
               "SELECT state FROM _openivm_backfill_progress WHERE \
                view_name = 'qg'"
               "done";
             Util.check_scalar (Store.db store)
               "SELECT chunks_done FROM _openivm_backfill_progress WHERE \
                view_name = 'qg'"
               "4";
             Alcotest.(check bool) "backfilled view is exact" true
               (Store.verify store);
             Store.close store));
    Util.tc "store: backfill killed at chunk K resumes at K, not 0"
      (fun () ->
         with_temp_dir (fun dir ->
             let f = faults () in
             let store = seed_store ~faults:f ~chunk_rows:2 dir in
             for i = 1 to 10 do
               ignore
                 (Store.exec store
                    (Printf.sprintf
                       "INSERT INTO groups VALUES ('g%d', %d)" (i mod 3) i))
             done;
             (* rolls happen once per chunk: the third roll = chunk 2 *)
             Fault.schedule f Fault.Chunk_crash ~after:2;
             (match Store.exec store install_sql with
              | exception Fault.Injected_crash -> ()
              | _ -> Alcotest.fail "expected injected crash");
             let store2 = Store.open_ ~dir () in
             Alcotest.(check (list (pair string int)))
               "resumed from chunk 2, not chunk 0"
               [ ("qg", 2) ]
               (Store.last_recovery store2).Store.backfills_resumed;
             Util.check_scalar (Store.db store2)
               "SELECT state FROM _openivm_backfill_progress WHERE \
                view_name = 'qg'"
               "done";
             Alcotest.(check bool) "converged after resume" true
               (Store.verify store2);
             Store.close store2));
    Util.tc "store: checkpoint truncates the log; recovery replays nothing"
      (fun () ->
         with_temp_dir (fun dir ->
             let store = seed_store dir in
             ignore
               (Store.exec store
                  "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
             ignore (Store.exec store install_sql);
             ignore (Store.checkpoint store);
             Store.close store;
             let store2 = Store.open_ ~dir () in
             let info = Store.last_recovery store2 in
             Alcotest.(check bool) "from a checkpoint" true
               (info.Store.checkpoint_seq > 0);
             Alcotest.(check int) "nothing to replay" 0 info.Store.replayed;
             Alcotest.(check int) "view reattached" 1
               info.Store.views_reattached;
             Alcotest.(check bool) "converged" true (Store.verify store2);
             (* capture triggers were re-armed by the reattach *)
             ignore (Store.exec store2 "INSERT INTO groups VALUES ('a', 7)");
             Alcotest.(check bool) "still incremental" true
               (Store.verify store2);
             Alcotest.(check (list string)) "values fold in"
               [ "(a, 8)"; "(b, 2)" ] (qg_rows store2);
             Store.close store2));
    Util.tc
      "store: crash between checkpoint and truncation double-applies nothing"
      (fun () ->
         with_temp_dir (fun dir ->
             let f = faults () in
             let store = seed_store ~faults:f dir in
             ignore
               (Store.exec store
                  "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
             ignore (Store.exec store install_sql);
             Fault.schedule f Fault.Truncate_crash ~after:0;
             (match Store.checkpoint store with
              | exception Fault.Injected_crash -> ()
              | _ -> Alcotest.fail "expected injected crash");
             let store2 = Store.open_ ~dir () in
             let info = Store.last_recovery store2 in
             Alcotest.(check bool) "checkpoint did land" true
               (info.Store.checkpoint_seq > 0);
             (* the full WAL survived, but every record sits at or below
                the checkpoint seq: replaying any of them would double-
                apply the inserts (SUM would become 2a) *)
             Alcotest.(check int) "tail skipped" 0 info.Store.replayed;
             Alcotest.(check (list string)) "no double apply"
               [ "(a, 1)"; "(b, 2)" ] (qg_rows store2);
             Alcotest.(check bool) "converged" true (Store.verify store2);
             Store.close store2));
    Util.tc "store: torn live append loses only the uncommitted statement"
      (fun () ->
         with_temp_dir (fun dir ->
             let f = faults () in
             let store = seed_store ~faults:f dir in
             ignore (Store.exec store "INSERT INTO groups VALUES ('a', 1)");
             Fault.schedule f Fault.Torn_tail ~after:0;
             (match Store.exec store "INSERT INTO groups VALUES ('b', 2)" with
              | exception Fault.Injected_crash -> ()
              | _ -> Alcotest.fail "expected injected crash");
             let store2 = Store.open_ ~dir () in
             Alcotest.(check bool) "tail was torn" true
               (Store.last_recovery store2).Store.torn_tail;
             Util.check_rows (Store.db store2) "SELECT * FROM groups"
               [ "(a, 1)" ];
             Store.close store2));
    Util.tc "store: journaled bridge batches fast-forward watermarks"
      (fun () ->
         with_temp_dir (fun dir ->
             let store = seed_store dir in
             let v =
               match Store.exec store install_sql with
               | `Installed v -> v
               | _ -> Alcotest.fail "expected install"
             in
             let schema =
               "CREATE TABLE groups(group_index VARCHAR, group_value \
                INTEGER)"
             in
             let p =
               Openivm_htap.Pipeline.create ~olap:(Store.db store) ~view:v
                 ~on_apply:(fun ~source ~seq ~replica rows ->
                     Store.log_batch store ~view:"qg" ~source ~seq ~replica
                       rows)
                 ~schema_sql:schema ~view_sql:install_sql ()
             in
             ignore
               (Openivm_htap.Pipeline.exec_oltp p
                  "INSERT INTO groups VALUES ('a', 1), ('b', 2)");
             ignore (Openivm_htap.Pipeline.sync p);
             ignore
               (Openivm_htap.Pipeline.exec_oltp p
                  "INSERT INTO groups VALUES ('a', 10)");
             ignore (Openivm_htap.Pipeline.sync p);
             Alcotest.(check bool) "pipeline converged" true
               (Openivm_htap.Pipeline.verify p);
             Store.close store;
             (* "restart the OLAP process": recover the store, then verify
                the bridge's exactly-once state traveled with it *)
             let store2 = Store.open_ ~dir () in
             Alcotest.(check int) "watermark fast-forwarded" 2
               (Database.query_int (Store.db store2)
                  "SELECT last_seq FROM _openivm_bridge_watermarks WHERE \
                   source = 'groups'");
             Alcotest.(check (list string)) "view recovered"
               [ "(a, 11)"; "(b, 2)" ] (qg_rows store2);
             Store.close store2));
    Util.tc "store: cascaded views recover in install order" (fun () ->
        with_temp_dir (fun dir ->
            let store = seed_store ~chunk_rows:2 dir in
            for i = 1 to 6 do
              ignore
                (Store.exec store
                   (Printf.sprintf
                      "INSERT INTO groups VALUES ('g%d', %d)" (i mod 2) i))
            done;
            ignore (Store.exec store install_sql);
            ignore
              (Store.exec store
                 "CREATE MATERIALIZED VIEW qtop AS SELECT SUM(s) AS total \
                  FROM qg");
            ignore (Store.exec store "INSERT INTO groups VALUES ('g0', 100)");
            ignore (Store.checkpoint store);
            ignore (Store.exec store "INSERT INTO groups VALUES ('g1', 50)");
            Store.close store;
            let store2 = Store.open_ ~dir () in
            Alcotest.(check int) "both views reattached" 2
              (Store.last_recovery store2).Store.views_reattached;
            (match Store.find_view store2 "qtop" with
             | Some vtop ->
               Alcotest.(check int) "cascade DAG rewired" 1
                 (Runner.dag_level vtop)
             | None -> Alcotest.fail "qtop missing");
            Alcotest.(check bool) "whole DAG converged" true
              (Store.verify store2);
            Util.check_rows (Store.db store2) "SELECT total FROM qtop"
              [ "(171)" ];
            Store.close store2));
    Util.tc "store: checkpoint refuses while a backfill is incomplete"
      (fun () ->
         with_temp_dir (fun dir ->
             let f = faults () in
             let store = seed_store ~faults:f ~chunk_rows:1 dir in
             for i = 1 to 4 do
               ignore
                 (Store.exec store
                    (Printf.sprintf "INSERT INTO groups VALUES ('g', %d)" i))
             done;
             Fault.schedule f Fault.Chunk_crash ~after:1;
             (match Store.exec store install_sql with
              | exception Fault.Injected_crash -> ()
              | _ -> Alcotest.fail "expected injected crash");
             (* the dying process can no longer checkpoint a half-filled
                view into durability *)
             match Store.checkpoint store with
             | exception Error.Sql_error _ -> ()
             | _ -> Alcotest.fail "expected checkpoint refusal"));
  ]
