open Openivm_engine
open Openivm_workload

let fresh () =
  let db = Database.create () in
  List.iter (fun sql -> Util.exec db sql) Tpch_lite.all_ddl;
  db

let suite =
  [ Util.tc "generator is deterministic under a seed" (fun () ->
        let g1 = Tpch_lite.create ~seed:5 ~customers:10 () in
        let g2 = Tpch_lite.create ~seed:5 ~customers:10 () in
        Alcotest.(check (list string)) "same statements"
          (Tpch_lite.order_statements g1)
          (Tpch_lite.order_statements g2));
    Util.tc "populate builds a consistent star" (fun () ->
        let db = fresh () in
        let gen = Tpch_lite.create ~customers:20 () in
        Tpch_lite.populate db gen ~orders:50;
        Util.check_scalar db "SELECT COUNT(*) FROM customer" "20";
        Util.check_scalar db "SELECT COUNT(*) FROM orders" "50";
        (* every line item joins to an order, every order to a customer *)
        Util.check_scalar db
          "SELECT COUNT(*) FROM lineitem WHERE l_orderkey NOT IN (SELECT \
           o_orderkey FROM orders)"
          "0";
        Util.check_scalar db
          "SELECT COUNT(*) FROM orders WHERE o_custkey NOT IN (SELECT \
           c_custkey FROM customer)"
          "0");
    Util.tc "revenue view stays consistent through orders and cancellations"
      (fun () ->
         let db = fresh () in
         let gen = Tpch_lite.create ~customers:15 () in
         Tpch_lite.populate db gen ~orders:30;
         let v = Openivm.Runner.install db Tpch_lite.revenue_view in
         for _ = 1 to 20 do
           List.iter (fun sql -> Util.exec db sql)
             (Tpch_lite.order_statements gen)
         done;
         for _ = 1 to 8 do
           List.iter (fun sql -> Util.exec db sql)
             (Tpch_lite.cancel_statements gen)
         done;
         Openivm.Runner.refresh v;
         Util.check_view_consistent db v);
    Util.tc "date predicates work over the generated data" (fun () ->
        let db = fresh () in
        let gen = Tpch_lite.create ~customers:10 () in
        Tpch_lite.populate db gen ~orders:40;
        let early =
          Database.query_int db
            "SELECT COUNT(*) FROM orders WHERE o_orderdate < DATE '1995-01-01'"
        in
        let late =
          Database.query_int db
            "SELECT COUNT(*) FROM orders WHERE o_orderdate >= DATE '1995-01-01'"
        in
        Alcotest.(check int) "partition covers all" 40 (early + late);
        Alcotest.(check bool) "both sides populated" true (early > 0 && late > 0));
  ]
