open Openivm_engine

let v_int i = Value.Int i
let v_str s = Value.Str s

let suite =
  [ Util.tc "compare: null sorts first" (fun () ->
        Alcotest.(check bool) "null < int" true (Value.compare Value.Null (v_int 0) < 0);
        Alcotest.(check bool) "null < str" true (Value.compare Value.Null (v_str "") < 0));
    Util.tc "compare: cross-type numerics" (fun () ->
        Alcotest.(check int) "1 = 1.0" 0 (Value.compare (v_int 1) (Value.Float 1.0));
        Alcotest.(check bool) "1 < 1.5" true (Value.compare (v_int 1) (Value.Float 1.5) < 0);
        Alcotest.(check bool) "2.5 > 2" true (Value.compare (Value.Float 2.5) (v_int 2) > 0));
    Util.tc "hash consistent with equal across numeric types" (fun () ->
        Alcotest.(check int) "hash 3 = hash 3.0" (Value.hash (v_int 3))
          (Value.hash (Value.Float 3.0)));
    Util.tc "date conversion roundtrip" (fun () ->
        List.iter
          (fun s ->
             match Value.date_of_string s with
             | Value.Date d -> Alcotest.(check string) s s (Value.date_to_string d)
             | _ -> Alcotest.fail "not a date")
          [ "1970-01-01"; "2024-06-09"; "2000-02-29"; "1999-12-31"; "1899-03-01" ]);
    Util.tc "date arithmetic anchors" (fun () ->
        (match Value.date_of_string "1970-01-01" with
         | Value.Date 0 -> ()
         | Value.Date d -> Alcotest.failf "epoch = %d" d
         | _ -> Alcotest.fail "not a date");
        match Value.date_of_string "1970-02-01" with
        | Value.Date 31 -> ()
        | _ -> Alcotest.fail "Jan has 31 days");
    Util.tc "invalid dates rejected" (fun () ->
        List.iter
          (fun s ->
             match Value.date_of_string s with
             | exception Error.Sql_error _ -> ()
             | _ -> Alcotest.failf "accepted %S" s)
          [ "2024-13-01"; "2024-00-10"; "nonsense"; "2024-1" ]);
    Util.tc "to_string formats" (fun () ->
        Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
        Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true));
        Alcotest.(check string) "float integral" "2.0" (Value.to_string (Value.Float 2.0)));
    Util.tc "encode_key is injective on distinct tuples" (fun () ->
        let tuples =
          [ [| v_str "a"; v_str "b" |];
            [| v_str "ab"; v_str "" |];
            [| v_str "a\x00b" |];
            [| v_str "a"; Value.Null |];
            [| Value.Null; v_str "a" |];
            [| v_int 1; v_int 2 |];
            [| v_int 12 |];
            [| Value.Bool true |];
            [| Value.Bool false |] ]
        in
        let keys = List.map Value.encode_key tuples in
        let distinct = List.sort_uniq String.compare keys in
        Alcotest.(check int) "all distinct" (List.length tuples) (List.length distinct));
  ]

(* encode_key over single same-type values preserves the value order *)
let qcheck =
  let open QCheck in
  [ Test.make ~count:500 ~name:"encode_key(int) preserves order"
      (pair int int)
      (fun (a, b) ->
         let ka = Value.encode_key [| Value.Int a |] in
         let kb = Value.encode_key [| Value.Int b |] in
         compare a b = compare (String.compare ka kb) 0
         || (a < b) = (String.compare ka kb < 0));
    Test.make ~count:500 ~name:"encode_key(string) preserves order"
      (pair string string)
      (fun (a, b) ->
         let ka = Value.encode_key [| Value.Str a |] in
         let kb = Value.encode_key [| Value.Str b |] in
         (String.compare a b < 0) = (String.compare ka kb < 0)
         || String.equal a b);
    Test.make ~count:1000 ~name:"civil/days conversion is a bijection"
      (triple (int_range 1600 2400) (int_range 1 12) (int_range 1 28))
      (fun (year, month, day) ->
         let d = Value.days_from_civil ~year ~month ~day in
         Value.civil_from_days d = (year, month, day)
         && Value.days_from_civil
              ~year:(let y, _, _ = Value.civil_from_days (d + 1) in y)
              ~month:(let _, m, _ = Value.civil_from_days (d + 1) in m)
              ~day:(let _, _, dd = Value.civil_from_days (d + 1) in dd)
            = d + 1);
    Test.make ~count:500 ~name:"row hash respects row equality"
      (list (pair int bool))
      (fun cells ->
         let row1 =
           Array.of_list
             (List.map (fun (i, b) -> if b then Value.Int i else Value.Str (string_of_int i)) cells)
         in
         let row2 = Array.copy row1 in
         Row.equal row1 row2 && Row.hash row1 = Row.hash row2);
  ]

let suite = suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck
