open Openivm_engine

let suite =
  [ Util.tc "push returns consecutive slots" (fun () ->
        let v = Vec.create ~dummy:0 () in
        Alcotest.(check int) "slot0" 0 (Vec.push v 10);
        Alcotest.(check int) "slot1" 1 (Vec.push v 20);
        Alcotest.(check int) "len" 2 (Vec.length v));
    Util.tc "get/set roundtrip" (fun () ->
        let v = Vec.create ~dummy:0 () in
        ignore (Vec.push v 1);
        ignore (Vec.push v 2);
        Vec.set v 0 99;
        Alcotest.(check int) "set" 99 (Vec.get v 0);
        Alcotest.(check int) "untouched" 2 (Vec.get v 1));
    Util.tc "bounds are checked" (fun () ->
        let v = Vec.create ~dummy:0 () in
        ignore (Vec.push v 1);
        (match Vec.get v 1 with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "get out of bounds");
        match Vec.set v (-1) 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "set out of bounds");
    Util.tc "growth preserves contents" (fun () ->
        let v = Vec.create ~dummy:(-1) () in
        for i = 0 to 999 do
          ignore (Vec.push v i)
        done;
        Alcotest.(check int) "len" 1000 (Vec.length v);
        let ok = ref true in
        Vec.iteri (fun i x -> if i <> x then ok := false) v;
        Alcotest.(check bool) "contents" true !ok);
    Util.tc "clear resets and allows reuse" (fun () ->
        let v = Vec.create ~dummy:0 () in
        ignore (Vec.push v 1);
        Vec.clear v;
        Alcotest.(check int) "empty" 0 (Vec.length v);
        Alcotest.(check int) "new slot" 0 (Vec.push v 5));
    Util.tc "fold and to_list agree" (fun () ->
        let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Vec.to_list v);
        Alcotest.(check int) "fold" 6 (Vec.fold ( + ) 0 v));
  ]
