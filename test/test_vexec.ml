(** The vectorized executor's own seams: validity bitmaps, selection
    vectors, batch boundary sizes, and — most importantly — byte-for-byte
    agreement with the row interpreter on the paths where [Vexec] has
    specialized kernels (all-int aggregates, int-key joins, outer-join
    null padding, CASE/COALESCE short-circuits, columnar INSERT
    coercion). Each equivalence check runs the same statements through two
    databases, one per engine, and compares unsorted row strings: the two
    engines promise identical row *order*, not just identical bags. *)

open Openivm_engine

let run_under engine stmts sql =
  let db = Database.create () in
  db.Database.exec_engine <- engine;
  List.iter (fun s -> ignore (Database.exec db s)) stmts;
  List.map Row.to_string (Database.query db sql).Database.rows

let check_engines_agree ?(msg = "vector = row") stmts sql =
  Alcotest.(check (list string))
    msg
    (run_under Exec.Row stmts sql)
    (run_under Exec.Vector stmts sql)

(* a base table with NULL-heavy int columns: k has a NULL group, v is
   NULL on every third row, f mixes sign and magnitude *)
let null_heavy =
  [ "CREATE TABLE t (k INTEGER, v INTEGER, f FLOAT)";
    "INSERT INTO t VALUES (1, 10, 1.5), (1, NULL, 2.5), (2, 20, NULL), \
     (NULL, 30, 0.5), (2, NULL, 3.5), (NULL, NULL, NULL), (3, 40, 4.0), \
     (1, 50, 0.0)" ]

let suite =
  [ (* --- validity bitmaps --- *)
    Util.tc "bitmap get/set round-trip across byte boundaries" (fun () ->
        let bm = Vec.Bitmap.create 19 false in
        List.iter (fun i -> Vec.Bitmap.set bm i true) [ 0; 7; 8; 15; 18 ];
        for i = 0 to 18 do
          Alcotest.(check bool)
            (Printf.sprintf "bit %d" i)
            (List.mem i [ 0; 7; 8; 15; 18 ])
            (Vec.Bitmap.get bm i)
        done;
        Vec.Bitmap.set bm 7 false;
        Alcotest.(check bool) "cleared" false (Vec.Bitmap.get bm 7);
        Alcotest.(check int) "count" 4 (Vec.Bitmap.count bm));
    Util.tc "bitmap all_set / none_set, tail bits included" (fun () ->
        List.iter
          (fun n ->
             Alcotest.(check bool)
               (Printf.sprintf "all_set %d" n)
               true
               (Vec.Bitmap.all_set (Vec.Bitmap.create n true));
             Alcotest.(check bool)
               (Printf.sprintf "none_set %d" n)
               true
               (Vec.Bitmap.none_set (Vec.Bitmap.create n false)))
          [ 0; 1; 8; 9; 64; 65 ];
        let bm = Vec.Bitmap.create 9 true in
        Vec.Bitmap.set bm 8 false;
        Alcotest.(check bool) "tail clear breaks all_set" false
          (Vec.Bitmap.all_set bm);
        let bm = Vec.Bitmap.create 9 false in
        Vec.Bitmap.set bm 8 true;
        Alcotest.(check bool) "tail set breaks none_set" false
          (Vec.Bitmap.none_set bm));
    (* --- selection vectors --- *)
    Util.tc "selection-vector composition" (fun () ->
        let base = [| 2; 4; 6; 8 |] in
        let inner = [| 0; 3; 1 |] in
        Alcotest.(check (list int))
          "base . inner" [ 2; 8; 4 ]
          (Array.to_list (Vec.Sel.compose base inner));
        let id = Vec.Sel.identity 4 in
        Alcotest.(check (list int))
          "base . id = base" (Array.to_list base)
          (Array.to_list (Vec.Sel.compose base id));
        Alcotest.(check (list int))
          "empty inner" []
          (Array.to_list (Vec.Sel.compose base [||])));
    (* --- growth and batch boundary sizes --- *)
    Util.tc "push into a zero-capacity vec terminates and grows" (fun () ->
        (* regression: ensure_capacity looped forever doubling 0 *)
        let v = Vec.create ~capacity:0 ~dummy:(-1) () in
        for i = 0 to 99 do
          ignore (Vec.push v i)
        done;
        Alcotest.(check int) "len" 100 (Vec.length v);
        Alcotest.(check int) "last" 99 (Vec.get v 99));
    Util.tc "batch of_rows/to_rows round-trip at boundary sizes" (fun () ->
        let bs = Vec.Batch.batch_size in
        List.iter
          (fun n ->
             let rows =
               Array.init n (fun i ->
                   [| Value.Int i;
                      (if i mod 3 = 0 then Value.Null else Value.Str "x") |])
             in
             let b = Vec.Batch.of_rows rows ~width:2 in
             Alcotest.(check int) (Printf.sprintf "nrows %d" n) n
               (Vec.Batch.length b);
             let back = Vec.Batch.to_rows b in
             Alcotest.(check bool)
               (Printf.sprintf "round-trip %d" n)
               true
               (rows = back))
          [ 0; 1; bs; bs + 1 ]);
    Util.tc "column extraction: nulls get a bitmap, mixes demote to boxed"
      (fun () ->
        let rows =
          [| [| Value.Int 1; Value.Int 1 |];
             [| Value.Null; Value.Float 2.0 |];
             [| Value.Int 3; Value.Int 3 |] |]
        in
        let c0 = Vec.Batch.column_of_rows rows 0 in
        (match c0.Vec.Col.data with
         | Vec.Col.Ints _ -> ()
         | _ -> Alcotest.fail "ints with nulls should stay typed");
        Alcotest.(check bool) "lane 1 invalid" false (Vec.Col.is_valid c0 1);
        Alcotest.(check string) "lane 2 value" "3"
          (Value.to_string (Vec.Col.value c0 2));
        let c1 = Vec.Batch.column_of_rows rows 1 in
        match c1.Vec.Col.data with
        | Vec.Col.Boxed _ -> ()
        | _ -> Alcotest.fail "int/float mix must demote to boxed");
    (* --- engine equivalence: aggregate folds --- *)
    Util.tc "NULL-heavy grouped aggregates match exec byte-for-byte"
      (fun () ->
        check_engines_agree null_heavy
          "SELECT k, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) \
           FROM t GROUP BY k");
    Util.tc "all-int fast path agrees with the general path and exec"
      (fun () ->
        (* two dense int keys + SUM/COUNT of dense ints: the open-addressed
           int fast path; adding the float column forces the generic path *)
        check_engines_agree null_heavy
          "SELECT k, v, COUNT(*), SUM(v) FROM t WHERE v IS NOT NULL AND k \
           IS NOT NULL GROUP BY k, v";
        check_engines_agree null_heavy
          "SELECT k, COUNT(v), SUM(v), SUM(f) FROM t GROUP BY k");
    Util.tc "global aggregate over empty input stays NULL" (fun () ->
        check_engines_agree null_heavy
          "SELECT SUM(v), COUNT(v), MIN(v) FROM t WHERE k = 99");
    (* --- engine equivalence: joins --- *)
    Util.tc "int-key equi-join agrees with exec" (fun () ->
        check_engines_agree
          (null_heavy
          @ [ "CREATE TABLE u (k INTEGER, w INTEGER)";
              "INSERT INTO u VALUES (1, 100), (2, 200), (NULL, 300), (9, \
               900)" ])
          "SELECT t.k, t.v, u.w FROM t JOIN u ON t.k = u.k");
    Util.tc "null-safe int join matches NULL keys like exec" (fun () ->
        check_engines_agree
          (null_heavy
          @ [ "CREATE TABLE u (k INTEGER, w INTEGER)";
              "INSERT INTO u VALUES (1, 100), (NULL, 300)" ])
          "SELECT t.k, u.w FROM t JOIN u ON t.k = u.k OR (t.k IS NULL AND \
           u.k IS NULL)");
    Util.tc "full outer join null padding stays typed downstream" (fun () ->
        (* unmatched sides are null-padded (all-false bitmaps); the
           IS NULL / COALESCE / CASE tower above must agree with exec *)
        check_engines_agree
          (null_heavy
          @ [ "CREATE TABLE u (k INTEGER, w INTEGER)";
              "INSERT INTO u VALUES (1, 100), (9, 900)" ])
          "SELECT t.k, u.k, COALESCE(t.v, 0) + COALESCE(u.w, 0), CASE WHEN \
           u.k IS NULL THEN t.v ELSE u.w END FROM t FULL OUTER JOIN u ON \
           t.k = u.k WHERE t.k IS NOT NULL OR u.k IS NOT NULL");
    (* --- engine equivalence: conditional kernels --- *)
    Util.tc "CASE and COALESCE short-circuits agree with exec" (fun () ->
        (* uniform all-true, uniform all-false, and mixed guards *)
        check_engines_agree null_heavy
          "SELECT CASE WHEN 1 = 1 THEN v ELSE -1 END, CASE WHEN 1 = 0 THEN \
           v ELSE -1 END, CASE WHEN v > 20 THEN v ELSE k END, COALESCE(v, \
           k, -7), COALESCE(v, NULL, -7) FROM t");
    (* --- columnar INSERT coercion --- *)
    Util.tc "INSERT..SELECT coerces columns batch-wise like exec" (fun () ->
        let setup =
          null_heavy
          @ [ "CREATE TABLE dst (k FLOAT, v INTEGER, f FLOAT)";
              (* identity column list, int column feeding a FLOAT target *)
              "INSERT INTO dst (k, v, f) SELECT k, v, f FROM t" ]
        in
        check_engines_agree setup "SELECT * FROM dst");
    Util.tc "columnar INSERT still enforces NOT NULL" (fun () ->
        let db = Util.db_with (null_heavy @ [ "CREATE TABLE dst (v INTEGER \
                                              NOT NULL)" ]) in
        match Database.exec db "INSERT INTO dst SELECT v FROM t" with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected NOT NULL violation")
  ]
