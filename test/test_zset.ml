open Openivm_engine
open Openivm_dbsp

let row_of_int i : Row.t = [| Value.Int i |]

let zset_of (bindings : (int * int) list) : Zset.t =
  Zset.of_list (List.map (fun (x, w) -> (row_of_int x, w)) bindings)

let gen_zset =
  QCheck.Gen.map zset_of
    QCheck.Gen.(list_size (int_bound 30) (pair (int_bound 10) (int_range (-3) 3)))

let arb_zset =
  QCheck.make ~print:Zset.to_string gen_zset

let suite_unit =
  [ Util.tc "zero weights vanish" (fun () ->
        let z = zset_of [ (1, 2); (1, -2) ] in
        Alcotest.(check bool) "empty" true (Zset.is_empty z));
    Util.tc "weights accumulate" (fun () ->
        let z = zset_of [ (1, 2); (1, 3) ] in
        Alcotest.(check int) "weight" 5 (Zset.weight z (row_of_int 1)));
    Util.tc "distinct clamps to 1" (fun () ->
        let z = Zset.distinct (zset_of [ (1, 5); (2, -3); (3, 1) ]) in
        Alcotest.(check int) "w1" 1 (Zset.weight z (row_of_int 1));
        Alcotest.(check int) "w2" 0 (Zset.weight z (row_of_int 2));
        Alcotest.(check int) "w3" 1 (Zset.weight z (row_of_int 3)));
    Util.tc "map merges weights" (fun () ->
        let z = Zset.map (fun _ -> row_of_int 0) (zset_of [ (1, 2); (2, 3) ]) in
        Alcotest.(check int) "merged" 5 (Zset.weight z (row_of_int 0)));
    Util.tc "join multiplies weights" (fun () ->
        let a = zset_of [ (1, 2) ] and b = zset_of [ (1, 3) ] in
        let j =
          Zset.join ~left_key:(fun r -> r) ~right_key:(fun r -> r)
            ~output:(fun l _ -> l) a b
        in
        Alcotest.(check int) "product" 6 (Zset.weight j (row_of_int 1)));
    Util.tc "to_rows_exn expands and rejects negatives" (fun () ->
        let z = zset_of [ (7, 3) ] in
        Alcotest.(check int) "copies" 3 (List.length (Zset.to_rows_exn z));
        let neg = zset_of [ (7, -1) ] in
        match Zset.to_rows_exn neg with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let qcheck =
  let open QCheck in
  [ Test.make ~count:300 ~name:"plus is commutative" (pair arb_zset arb_zset)
      (fun (a, b) -> Zset.equal (Zset.plus a b) (Zset.plus b a));
    Test.make ~count:300 ~name:"plus is associative"
      (triple arb_zset arb_zset arb_zset)
      (fun (a, b, c) ->
         Zset.equal (Zset.plus (Zset.plus a b) c) (Zset.plus a (Zset.plus b c)));
    Test.make ~count:300 ~name:"negate is an additive inverse" arb_zset
      (fun a -> Zset.is_empty (Zset.plus a (Zset.negate a)));
    Test.make ~count:300 ~name:"minus agrees with plus/negate"
      (pair arb_zset arb_zset)
      (fun (a, b) -> Zset.equal (Zset.minus a b) (Zset.plus a (Zset.negate b)));
    Test.make ~count:300 ~name:"distinct is idempotent" arb_zset
      (fun a -> Zset.equal (Zset.distinct a) (Zset.distinct (Zset.distinct a)));
    Test.make ~count:300 ~name:"map is linear" (pair arb_zset arb_zset)
      (fun (a, b) ->
         let f = Zset.map (fun r -> [| r.(0); r.(0) |]) in
         Zset.equal (f (Zset.plus a b)) (Zset.plus (f a) (f b)));
    Test.make ~count:300 ~name:"filter is linear" (pair arb_zset arb_zset)
      (fun (a, b) ->
         let p (r : Row.t) = match r.(0) with Value.Int i -> i mod 2 = 0 | _ -> false in
         Zset.equal
           (Zset.filter p (Zset.plus a b))
           (Zset.plus (Zset.filter p a) (Zset.filter p b)));
    Test.make ~count:200 ~name:"join is bilinear in the left argument"
      (triple arb_zset arb_zset arb_zset)
      (fun (a1, a2, b) ->
         let j x y =
           Zset.join ~left_key:(fun r -> r) ~right_key:(fun r -> r)
             ~output:Row.concat x y
         in
         Zset.equal (j (Zset.plus a1 a2) b) (Zset.plus (j a1 b) (j a2 b)));
    Test.make ~count:300 ~name:"positive/negative decompose" arb_zset
      (fun a ->
         Zset.equal a (Zset.minus (Zset.positive a) (Zset.negative a)));
    Test.make ~count:300 ~name:"accumulate = plus" (pair arb_zset arb_zset)
      (fun (a, b) ->
         let acc = Zset.copy a in
         Zset.accumulate ~into:acc b;
         Zset.equal acc (Zset.plus a b));
  ]

let suite = suite_unit @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck
