open Openivm_engine
open Openivm_dbsp

let row_of_int i : Row.t = [| Value.Int i |]

let zset_of (bindings : (int * int) list) : Zset.t =
  Zset.of_list (List.map (fun (x, w) -> (row_of_int x, w)) bindings)

let gen_zset =
  QCheck.Gen.map zset_of
    QCheck.Gen.(list_size (int_bound 30) (pair (int_bound 10) (int_range (-3) 3)))

let arb_zset =
  QCheck.make ~print:Zset.to_string gen_zset

let suite_unit =
  [ Util.tc "zero weights vanish" (fun () ->
        let z = zset_of [ (1, 2); (1, -2) ] in
        Alcotest.(check bool) "empty" true (Zset.is_empty z));
    Util.tc "weights accumulate" (fun () ->
        let z = zset_of [ (1, 2); (1, 3) ] in
        Alcotest.(check int) "weight" 5 (Zset.weight z (row_of_int 1)));
    Util.tc "distinct clamps to 1" (fun () ->
        let z = Zset.distinct (zset_of [ (1, 5); (2, -3); (3, 1) ]) in
        Alcotest.(check int) "w1" 1 (Zset.weight z (row_of_int 1));
        Alcotest.(check int) "w2" 0 (Zset.weight z (row_of_int 2));
        Alcotest.(check int) "w3" 1 (Zset.weight z (row_of_int 3)));
    Util.tc "map merges weights" (fun () ->
        let z = Zset.map (fun _ -> row_of_int 0) (zset_of [ (1, 2); (2, 3) ]) in
        Alcotest.(check int) "merged" 5 (Zset.weight z (row_of_int 0)));
    Util.tc "join multiplies weights" (fun () ->
        let a = zset_of [ (1, 2) ] and b = zset_of [ (1, 3) ] in
        let j =
          Zset.join ~left_key:(fun r -> r) ~right_key:(fun r -> r)
            ~output:(fun l _ -> l) a b
        in
        Alcotest.(check int) "product" 6 (Zset.weight j (row_of_int 1)));
    Util.tc "to_rows_exn expands and rejects negatives" (fun () ->
        let z = zset_of [ (7, 3) ] in
        Alcotest.(check int) "copies" 3 (List.length (Zset.to_rows_exn z));
        let neg = zset_of [ (7, -1) ] in
        match Zset.to_rows_exn neg with
        | exception Error.Sql_error _ -> ()
        | _ -> Alcotest.fail "expected error");
    (* regression: minus/plus must not mutate their operands now that
       minus folds in one pass and plus copies the larger side *)
    Util.tc "minus and plus leave operands untouched" (fun () ->
        let a = zset_of [ (1, 2); (2, -1) ] in
        let b = zset_of [ (1, 1); (3, 4); (4, 1) ] in
        let a0 = Zset.copy a and b0 = Zset.copy b in
        ignore (Zset.minus a b);
        ignore (Zset.minus b a);
        ignore (Zset.plus a b);   (* b is larger: copied side swaps *)
        ignore (Zset.plus b a);
        Alcotest.(check bool) "a unchanged" true (Zset.equal a a0);
        Alcotest.(check bool) "b unchanged" true (Zset.equal b b0));
    Util.tc "partition rejects zero parts" (fun () ->
        match Zset.partition ~parts:0 (zset_of [ (1, 1) ]) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Util.tc "partition colocates equal keys" (fun () ->
        let z = Zset.of_list
            [ ([| Value.Int 3; Value.Int 10 |], 2);
              ([| Value.Int 3; Value.Int 11 |], 1);
              ([| Value.Int 8; Value.Int 12 |], 1) ]
        in
        let keyed = Zset.partition ~key:(fun r -> [| r.(0) |]) ~parts:4 z in
        Array.iter
          (fun shard ->
             (* every shard holds either all of key 3's rows or none *)
             let w10 = Zset.weight shard [| Value.Int 3; Value.Int 10 |] in
             let w11 = Zset.weight shard [| Value.Int 3; Value.Int 11 |] in
             Alcotest.(check bool) "key 3 colocated" true
               ((w10 = 2 && w11 = 1) || (w10 = 0 && w11 = 0)))
          keyed);
  ]

let qcheck =
  let open QCheck in
  [ Test.make ~count:300 ~name:"plus is commutative" (pair arb_zset arb_zset)
      (fun (a, b) -> Zset.equal (Zset.plus a b) (Zset.plus b a));
    Test.make ~count:300 ~name:"plus is associative"
      (triple arb_zset arb_zset arb_zset)
      (fun (a, b, c) ->
         Zset.equal (Zset.plus (Zset.plus a b) c) (Zset.plus a (Zset.plus b c)));
    Test.make ~count:300 ~name:"negate is an additive inverse" arb_zset
      (fun a -> Zset.is_empty (Zset.plus a (Zset.negate a)));
    Test.make ~count:300 ~name:"minus agrees with plus/negate"
      (pair arb_zset arb_zset)
      (fun (a, b) -> Zset.equal (Zset.minus a b) (Zset.plus a (Zset.negate b)));
    Test.make ~count:300 ~name:"distinct is idempotent" arb_zset
      (fun a -> Zset.equal (Zset.distinct a) (Zset.distinct (Zset.distinct a)));
    Test.make ~count:300 ~name:"map is linear" (pair arb_zset arb_zset)
      (fun (a, b) ->
         let f = Zset.map (fun r -> [| r.(0); r.(0) |]) in
         Zset.equal (f (Zset.plus a b)) (Zset.plus (f a) (f b)));
    Test.make ~count:300 ~name:"filter is linear" (pair arb_zset arb_zset)
      (fun (a, b) ->
         let p (r : Row.t) = match r.(0) with Value.Int i -> i mod 2 = 0 | _ -> false in
         Zset.equal
           (Zset.filter p (Zset.plus a b))
           (Zset.plus (Zset.filter p a) (Zset.filter p b)));
    Test.make ~count:200 ~name:"join is bilinear in the left argument"
      (triple arb_zset arb_zset arb_zset)
      (fun (a1, a2, b) ->
         let j x y =
           Zset.join ~left_key:(fun r -> r) ~right_key:(fun r -> r)
             ~output:Row.concat x y
         in
         Zset.equal (j (Zset.plus a1 a2) b) (Zset.plus (j a1 b) (j a2 b)));
    Test.make ~count:300 ~name:"positive/negative decompose" arb_zset
      (fun a ->
         Zset.equal a (Zset.minus (Zset.positive a) (Zset.negative a)));
    Test.make ~count:300 ~name:"accumulate = plus" (pair arb_zset arb_zset)
      (fun (a, b) ->
         let acc = Zset.copy a in
         Zset.accumulate ~into:acc b;
         Zset.equal acc (Zset.plus a b));
    Test.make ~count:300 ~name:"merge inverts partition"
      (pair arb_zset (int_range 1 7))
      (fun (a, parts) -> Zset.equal a (Zset.merge (Zset.partition ~parts a)));
    Test.make ~count:300 ~name:"partition shards are disjoint"
      (pair arb_zset (int_range 1 7))
      (fun (a, parts) ->
         let shards = Zset.partition ~parts a in
         let total =
           Array.fold_left (fun acc s -> acc + Zset.cardinality s) 0 shards
         in
         total = Zset.cardinality a);
  ]

let suite = suite_unit @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck
