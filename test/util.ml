(** Shared test helpers. *)

open Openivm_engine

let db_with (statements : string list) : Database.t =
  let db = Database.create () in
  List.iter (fun sql -> ignore (Database.exec db sql)) statements;
  db

let rows_of (r : Database.query_result) : string list =
  List.map Row.to_string r.Database.rows

(** Run a query and render rows as strings, sorted, for order-insensitive
    comparison. *)
let sorted_rows db sql : string list =
  List.sort String.compare (rows_of (Database.query db sql))

let check_rows ?(msg = "rows") db sql expected =
  Alcotest.(check (list string)) msg
    (List.sort String.compare expected)
    (sorted_rows db sql)

let check_scalar ?(msg = "scalar") db sql expected =
  Alcotest.(check string) msg expected
    (Value.to_string (Database.query_scalar db sql))

let exec db sql = ignore (Database.exec db sql)

(** The view's visible contents, sorted row strings (see
    {!Openivm.Runner.visible_rows}). *)
let view_visible (v : Openivm.Runner.view) : string list =
  Openivm.Runner.visible_rows v

(** Reference: rerun the defining query from scratch. *)
let view_reference (_db : Database.t) (v : Openivm.Runner.view) : string list =
  Openivm.Runner.recompute_rows v

let check_view_consistent ?(msg = "view = recompute") db v =
  Alcotest.(check (list string)) msg (view_reference db v) (view_visible v)

let tc name f = Alcotest.test_case name `Quick f
