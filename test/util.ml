(** Shared test helpers. *)

open Openivm_engine

let db_with (statements : string list) : Database.t =
  let db = Database.create () in
  List.iter (fun sql -> ignore (Database.exec db sql)) statements;
  db

let rows_of (r : Database.query_result) : string list =
  List.map Row.to_string r.Database.rows

(** Run a query and render rows as strings, sorted, for order-insensitive
    comparison. *)
let sorted_rows db sql : string list =
  List.sort String.compare (rows_of (Database.query db sql))

let check_rows ?(msg = "rows") db sql expected =
  Alcotest.(check (list string)) msg
    (List.sort String.compare expected)
    (sorted_rows db sql)

let check_scalar ?(msg = "scalar") db sql expected =
  Alcotest.(check string) msg expected
    (Value.to_string (Database.query_scalar db sql))

let exec db sql = ignore (Database.exec db sql)

(** The view's visible contents, sorted row strings. Hidden bookkeeping
    columns are stripped; flat (non-aggregate) views materialize in
    weighted form, so their rows are expanded by the hidden row count to
    recover bag semantics. *)
let view_visible (v : Openivm.Runner.view) : string list =
  let shape = v.Openivm.Runner.compiled.Openivm.Compiler.shape in
  let visible = Openivm.Shape.visible_names shape in
  let flat = not (Openivm.Shape.has_aggregates shape) in
  let cols =
    if flat then visible @ [ Openivm.Shape.count_column ] else visible
  in
  let r =
    Openivm.Runner.query v
      (Printf.sprintf "SELECT %s FROM %s"
         (String.concat ", " cols)
         (Openivm.Runner.view_name v))
  in
  let rows =
    if flat then
      List.concat_map
        (fun (row : Row.t) ->
           let n = Array.length row - 1 in
           let weight =
             match row.(n) with Value.Int w -> w | _ -> 1
           in
           let visible_part = Array.sub row 0 n in
           List.init weight (fun _ -> Row.to_string visible_part))
        r.Database.rows
    else rows_of r
  in
  List.sort String.compare rows

(** Reference: rerun the defining query from scratch. *)
let view_reference (db : Database.t) (v : Openivm.Runner.view) : string list =
  let q = v.Openivm.Runner.compiled.Openivm.Compiler.shape.Openivm.Shape.query in
  let sql = Openivm_sql.Pretty.select_to_sql Openivm_sql.Dialect.minidb q in
  List.sort String.compare (rows_of (Database.query db sql))

let check_view_consistent ?(msg = "view = recompute") db v =
  Alcotest.(check (list string)) msg (view_reference db v) (view_visible v)

let tc name f = Alcotest.test_case name `Quick f
